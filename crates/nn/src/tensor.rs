//! Dense tensors in HWC layout.
//!
//! Activations are stored height × width × channels with channels innermost,
//! so convolution inner loops run over contiguous memory on both the input
//! and the weights — the same reason systolic accelerators like the DPU
//! prefer channel-innermost streaming. Weights for a convolution are stored
//! `[out_ch][kh][kw][in_ch]`.

use std::fmt;

/// A dense `f32` tensor in HWC layout (or flat 1-D for vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    h: usize,
    w: usize,
    c: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of shape `(h, w, c)`.
    pub fn zeros(h: usize, w: usize, c: usize) -> Self {
        Tensor {
            h,
            w,
            c,
            data: vec![0.0; h * w * c],
        }
    }

    /// Wraps existing data as an `(h, w, c)` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != h * w * c`.
    pub fn from_vec(h: usize, w: usize, c: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), h * w * c, "shape/data mismatch");
        Tensor { h, w, c, data }
    }

    /// Creates a flat vector tensor of length `n` (shape `(1, 1, n)`).
    pub fn vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor {
            h: 1,
            w: 1,
            c: n,
            data,
        }
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Channels.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the backing data (HWC order).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(y, x, ch)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn at(&self, y: usize, x: usize, ch: usize) -> f32 {
        assert!(
            y < self.h && x < self.w && ch < self.c,
            "index out of range"
        );
        self.data[(y * self.w + x) * self.c + ch]
    }

    /// Sets the element at `(y, x, ch)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn set(&mut self, y: usize, x: usize, ch: usize, v: f32) {
        assert!(
            y < self.h && x < self.w && ch < self.c,
            "index out of range"
        );
        self.data[(y * self.w + x) * self.c + ch] = v;
    }

    /// Reshapes in place to `(h, w, c)`, reusing the backing allocation.
    /// All elements are reset to zero (like a fresh [`Tensor::zeros`]),
    /// but no allocation happens unless the tensor grows past its
    /// capacity — the executor arenas rely on this for allocation-free
    /// steady-state inference.
    pub fn reset(&mut self, h: usize, w: usize, c: usize) {
        self.h = h;
        self.w = w;
        self.c = c;
        self.data.clear();
        self.data.resize(h * w * c, 0.0);
    }

    /// Largest absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the largest element (ties break to the first).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}x{}]", self.h, self.w, self.c)
    }
}

/// A quantized activation tensor: `i8` codes plus a power-agnostic scale.
///
/// `real ≈ code · scale`. Codes are stored in the same HWC layout as
/// [`Tensor`]; at precisions below INT8 the codes still live in `i8`
/// storage but are range-limited to the narrower format (as in the DPU,
/// where narrow operands are packed into byte lanes).
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    h: usize,
    w: usize,
    c: usize,
    /// Quantized codes.
    pub codes: Vec<i8>,
    /// Real value per unit code.
    pub scale: f32,
}

impl QTensor {
    /// Creates a zero-filled quantized tensor.
    pub fn zeros(h: usize, w: usize, c: usize, scale: f32) -> Self {
        QTensor {
            h,
            w,
            c,
            codes: vec![0; h * w * c],
            scale,
        }
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Channels.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reshapes in place to `(h, w, c)` at `scale`, reusing the backing
    /// allocation; codes are reset to zero. See [`Tensor::reset`].
    pub fn reset(&mut self, h: usize, w: usize, c: usize, scale: f32) {
        self.h = h;
        self.w = w;
        self.c = c;
        self.scale = scale;
        self.codes.clear();
        self.codes.resize(h * w * c, 0);
    }

    /// Dequantizes to a float tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.h,
            self.w,
            self.c,
            self.codes
                .iter()
                .map(|&q| f32::from(q) * self.scale)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(4, 5, 3);
        t.set(2, 3, 1, 7.5);
        assert_eq!(t.at(2, 3, 1), 7.5);
        assert_eq!(t.at(2, 3, 0), 0.0);
    }

    #[test]
    fn hwc_layout_is_channel_innermost() {
        let mut t = Tensor::zeros(2, 2, 3);
        t.set(0, 0, 0, 1.0);
        t.set(0, 0, 1, 2.0);
        t.set(0, 0, 2, 3.0);
        assert_eq!(&t.data()[..3], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_panics() {
        Tensor::zeros(2, 2, 2).at(2, 0, 0);
    }

    #[test]
    fn argmax_finds_first_max() {
        let t = Tensor::vector(vec![1.0, 5.0, 5.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn max_abs_covers_negatives() {
        let t = Tensor::vector(vec![1.0, -9.0, 3.0]);
        assert_eq!(t.max_abs(), 9.0);
    }

    #[test]
    fn qtensor_dequantizes() {
        let mut q = QTensor::zeros(1, 1, 4, 0.5);
        q.codes[2] = -6;
        let t = q.dequantize();
        assert_eq!(t.at(0, 0, 2), -3.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_validates_len() {
        Tensor::from_vec(2, 2, 2, vec![0.0; 7]);
    }
}

//! The five DSN-2020 benchmark CNNs.
//!
//! Structurally faithful, channel-scaled builders for the paper's Table-1
//! benchmarks. Layer vocabulary, depth and the *relative parameter-size
//! ordering* (GoogleNet < VGGNet < ResNet50 < Inception < AlexNet) match
//! the paper; absolute sizes are scaled down (documented in DESIGN.md) so
//! that the full multi-board × multi-voltage × multi-repetition campaigns
//! run in minutes instead of days inside the cycle-accounted simulator.
//!
//! Weights are deterministic seeded He-initialized values: the study
//! evaluates *inference under hardware faults*, not training, and the
//! synthetic datasets in [`crate::dataset`] calibrate each network's
//! nominal-voltage accuracy to the paper's Table 1 by construction.

use crate::graph::{ConvParams, Graph, GraphBuilder, NodeId};
use redvolt_num::rng::Xoshiro256StarStar;

/// One of the paper's five image-classification benchmarks (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// VGGNet on CIFAR-10 (32×32, 10 classes, 6 weight layers).
    VggNet,
    /// GoogleNet on CIFAR-10 (32×32, 10 classes, 21 weight layers).
    GoogleNet,
    /// AlexNet on Kaggle Dogs-vs-Cats (48×48 scaled, 2 classes, 8 layers).
    AlexNet,
    /// ResNet50 on ILSVRC2012 (32×32 scaled, 50 classes, 50 layers).
    ResNet50,
    /// Inception on ILSVRC2012 (32×32 scaled, 50 classes, 22 layers).
    Inception,
}

impl ModelKind {
    /// All five benchmarks in the paper's Table-1 order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::VggNet,
        ModelKind::GoogleNet,
        ModelKind::AlexNet,
        ModelKind::ResNet50,
        ModelKind::Inception,
    ];

    /// Benchmark name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::VggNet => "VGGNet",
            ModelKind::GoogleNet => "GoogleNet",
            ModelKind::AlexNet => "AlexNet",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::Inception => "Inception",
        }
    }

    /// The paper's Table-1 metadata for this benchmark.
    pub fn spec(self) -> ModelSpec {
        match self {
            ModelKind::VggNet => ModelSpec {
                kind: self,
                dataset: "Cifar-10",
                input_hw: 32,
                classes: 10,
                paper_layers: 6,
                paper_size_mb: 8.7,
                paper_accuracy: 0.87,
                paper_accuracy_at_vnom: 0.86,
            },
            ModelKind::GoogleNet => ModelSpec {
                kind: self,
                dataset: "Cifar-10",
                input_hw: 32,
                classes: 10,
                paper_layers: 21,
                paper_size_mb: 6.6,
                paper_accuracy: 0.91,
                paper_accuracy_at_vnom: 0.91,
            },
            ModelKind::AlexNet => ModelSpec {
                kind: self,
                dataset: "Kaggle Dogs vs. Cats",
                input_hw: 48,
                classes: 2,
                paper_layers: 8,
                paper_size_mb: 233.2,
                paper_accuracy: 0.96,
                paper_accuracy_at_vnom: 0.925,
            },
            ModelKind::ResNet50 => ModelSpec {
                kind: self,
                dataset: "ILSVRC2012",
                input_hw: 32,
                classes: 50,
                paper_layers: 50,
                paper_size_mb: 102.5,
                paper_accuracy: 0.76,
                paper_accuracy_at_vnom: 0.688,
            },
            ModelKind::Inception => ModelSpec {
                kind: self,
                dataset: "ILSVRC2012",
                input_hw: 32,
                classes: 50,
                paper_layers: 22,
                paper_size_mb: 107.3,
                paper_accuracy: 0.687,
                paper_accuracy_at_vnom: 0.651,
            },
        }
    }

    /// Builds the model graph at the given scale. Batch-norm layers (in
    /// ResNet50) are left unfolded; callers quantizing the graph should
    /// call [`Graph::fold_batch_norms`] first, as the DPU toolchain does.
    ///
    /// Dense-layer biases are centered on a seeded probe set (see
    /// [`Graph::center_dense_biases`]) so the classifier produces diverse,
    /// input-dependent predictions, as a trained model would.
    pub fn build(self, scale: ModelScale) -> Graph {
        let mut init = WeightInit::new(self);
        let mut graph = match self {
            ModelKind::VggNet => build_vggnet(scale, &mut init),
            ModelKind::GoogleNet => build_googlenet(scale, &mut init),
            ModelKind::AlexNet => build_alexnet(scale, &mut init),
            ModelKind::ResNet50 => build_resnet50(scale, &mut init),
            ModelKind::Inception => build_inception(scale, &mut init),
        };
        let spec = self.spec();
        let probe_set = crate::dataset::SyntheticDataset::new(
            spec.input_hw,
            spec.input_hw,
            3,
            spec.classes,
            0xD0B1A5 ^ self as u64,
        );
        let n_center = 12;
        graph
            .center_dense_biases(&probe_set.images(n_center))
            .expect("probe images match the input shape");
        // Fit the linear readout on held-out probe images so the
        // classifier has trained-model-like decision margins (see
        // `Graph::fit_readout`). Sized at ≥4 samples per class.
        let n_fit = (spec.classes * 4).max(120);
        let mut fit_images = Vec::with_capacity(n_fit);
        let mut fit_labels = Vec::with_capacity(n_fit);
        for i in 0..n_fit {
            let (img, class) = probe_set.image(n_center + i);
            fit_images.push(img);
            fit_labels.push(class);
        }
        graph
            .fit_readout(&fit_images, &fit_labels, 400, 1.0)
            .expect("probe images match the input shape");
        graph
    }
}

/// Table-1 metadata of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Which benchmark.
    pub kind: ModelKind,
    /// Dataset name as in the paper.
    pub dataset: &'static str,
    /// Square input size (paper inputs are scaled; see DESIGN.md).
    pub input_hw: usize,
    /// Output classes (ILSVRC scaled from 1000 to 50).
    pub classes: usize,
    /// The paper's "#Layers" column (conventional depth counting).
    pub paper_layers: usize,
    /// The paper's parameter size in MB.
    pub paper_size_mb: f64,
    /// Literature accuracy from Table 1.
    pub paper_accuracy: f64,
    /// The paper's measured accuracy at Vnom ("Our design @Vnom").
    pub paper_accuracy_at_vnom: f64,
}

/// Build scale: full (benchmark) or tiny (unit tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelScale {
    /// The scaled-benchmark configuration used by all experiments.
    Paper,
    /// A heavily shrunk configuration for fast unit tests (same layer
    /// structure, quarter-ish widths).
    Tiny,
}

impl ModelScale {
    fn ch(self, full: usize) -> usize {
        match self {
            ModelScale::Paper => full,
            ModelScale::Tiny => (full / 4).max(2),
        }
    }
}

/// Deterministic He-style weight initializer with per-layer substreams.
struct WeightInit {
    rng: Xoshiro256StarStar,
    layer: u64,
}

impl WeightInit {
    fn new(kind: ModelKind) -> Self {
        let seed = match kind {
            ModelKind::VggNet => 0x5EED_0001,
            ModelKind::GoogleNet => 0x5EED_0002,
            ModelKind::AlexNet => 0x5EED_0003,
            ModelKind::ResNet50 => 0x5EED_0004,
            ModelKind::Inception => 0x5EED_0005,
        };
        WeightInit {
            rng: Xoshiro256StarStar::seed_from(seed),
            layer: 0,
        }
    }

    fn conv_weights(&mut self, p: &ConvParams) -> (Vec<f32>, Vec<f32>) {
        self.layer += 1;
        let mut rng = self.rng.substream(self.layer);
        let fan_in = (p.k * p.k * p.in_ch) as f64;
        let std = (2.0 / fan_in).sqrt();
        let w = (0..p.weight_count())
            .map(|_| rng.next_gaussian(0.0, std) as f32)
            .collect();
        let b = (0..p.out_ch)
            .map(|_| rng.next_gaussian(0.0, 0.02) as f32)
            .collect();
        (w, b)
    }

    fn dense_weights(&mut self, in_len: usize, out_len: usize) -> (Vec<f32>, Vec<f32>) {
        self.layer += 1;
        let mut rng = self.rng.substream(self.layer);
        let std = (2.0 / in_len as f64).sqrt();
        let w = (0..in_len * out_len)
            .map(|_| rng.next_gaussian(0.0, std) as f32)
            .collect();
        let b = (0..out_len)
            .map(|_| rng.next_gaussian(0.0, 0.02) as f32)
            .collect();
        (w, b)
    }

    fn bn_params(&mut self, c: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        self.layer += 1;
        let mut rng = self.rng.substream(self.layer);
        let gamma = (0..c)
            .map(|_| 1.0 + rng.next_gaussian(0.0, 0.05) as f32)
            .collect();
        let beta = (0..c)
            .map(|_| rng.next_gaussian(0.0, 0.02) as f32)
            .collect();
        let mean = (0..c)
            .map(|_| rng.next_gaussian(0.0, 0.05) as f32)
            .collect();
        let var = (0..c)
            .map(|_| (1.0 + rng.next_gaussian(0.0, 0.1)).abs().max(0.25) as f32)
            .collect();
        (gamma, beta, mean, var)
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the layer hyper-parameter list
fn conv(
    b: &mut GraphBuilder,
    init: &mut WeightInit,
    name: &str,
    x: NodeId,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    relu: bool,
) -> NodeId {
    let in_ch = b.shape(x).c;
    let p = ConvParams {
        in_ch,
        out_ch,
        k,
        stride,
        pad,
        relu,
    };
    let (w, bias) = init.conv_weights(&p);
    b.conv(name, x, p, w, bias)
}

fn dense(
    b: &mut GraphBuilder,
    init: &mut WeightInit,
    name: &str,
    x: NodeId,
    out_len: usize,
    relu: bool,
) -> NodeId {
    let in_len = b.shape(x).len();
    let (w, bias) = init.dense_weights(in_len, out_len);
    b.dense(name, x, out_len, relu, w, bias)
}

/// VGGNet: 4 conv + 2 dense (the paper's 6 layers) on 32×32 CIFAR-10.
fn build_vggnet(s: ModelScale, init: &mut WeightInit) -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(32, 32, 3);
    let x = conv(&mut b, init, "conv1", x, s.ch(24), 3, 1, 1, true);
    let x = b.max_pool("pool1", x, 2, 2);
    let x = conv(&mut b, init, "conv2", x, s.ch(32), 3, 1, 1, true);
    let x = b.max_pool("pool2", x, 2, 2);
    let x = conv(&mut b, init, "conv3", x, s.ch(48), 3, 1, 1, true);
    let x = conv(&mut b, init, "conv4", x, s.ch(64), 3, 1, 1, true);
    let x = b.max_pool("pool3", x, 2, 2);
    let x = dense(&mut b, init, "fc1", x, s.ch(96), true);
    let x = dense(&mut b, init, "fc2", x, 10, false);
    let out = b.softmax("softmax", x);
    b.finish(out)
}

/// An inception-style module with four branches: 1×1, 1×1→3×3, 3×3, and a
/// 1×1 projection. Five weight layers per module.
#[allow(clippy::too_many_arguments)]
fn inception_module(
    b: &mut GraphBuilder,
    init: &mut WeightInit,
    name: &str,
    x: NodeId,
    br1: usize,
    br2_reduce: usize,
    br2: usize,
    br3: usize,
    br4: usize,
) -> NodeId {
    let p1 = conv(b, init, &format!("{name}_1x1"), x, br1, 1, 1, 0, true);
    let r2 = conv(
        b,
        init,
        &format!("{name}_3x3r"),
        x,
        br2_reduce,
        1,
        1,
        0,
        true,
    );
    let p2 = conv(b, init, &format!("{name}_3x3"), r2, br2, 3, 1, 1, true);
    let p3 = conv(b, init, &format!("{name}_d3x3"), x, br3, 3, 1, 1, true);
    let p4 = conv(b, init, &format!("{name}_proj"), x, br4, 1, 1, 0, true);
    b.concat(&format!("{name}_cat"), &[p1, p2, p3, p4])
}

/// GoogleNet: 4 stem convs + 3 inception modules (5 convs each) + 2 dense
/// = 21 weight layers, on 32×32 CIFAR-10.
fn build_googlenet(s: ModelScale, init: &mut WeightInit) -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(32, 32, 3);
    let x = conv(&mut b, init, "stem1", x, s.ch(16), 3, 1, 1, true);
    let x = b.max_pool("pool1", x, 2, 2);
    let x = conv(&mut b, init, "stem2", x, s.ch(16), 1, 1, 0, true);
    let x = conv(&mut b, init, "stem3", x, s.ch(24), 3, 1, 1, true);
    let x = conv(&mut b, init, "stem4", x, s.ch(32), 3, 1, 1, true);
    let x = b.max_pool("pool2", x, 2, 2);
    let x = inception_module(
        &mut b,
        init,
        "inc1",
        x,
        s.ch(8),
        s.ch(8),
        s.ch(12),
        s.ch(8),
        s.ch(4),
    );
    let x = inception_module(
        &mut b,
        init,
        "inc2",
        x,
        s.ch(12),
        s.ch(8),
        s.ch(16),
        s.ch(12),
        s.ch(8),
    );
    let x = b.max_pool("pool3", x, 2, 2);
    let x = inception_module(
        &mut b,
        init,
        "inc3",
        x,
        s.ch(16),
        s.ch(12),
        s.ch(24),
        s.ch(16),
        s.ch(8),
    );
    let x = b.global_avg_pool("gap", x);
    let x = dense(&mut b, init, "fc1", x, s.ch(32), true);
    let x = dense(&mut b, init, "fc2", x, 10, false);
    let out = b.softmax("softmax", x);
    b.finish(out)
}

/// AlexNet: 5 conv + 3 dense (8 layers) on 48×48 Dogs-vs-Cats. The three
/// large fully-connected layers dominate its parameter count, as in the
/// original (Table 1's 233 MB).
fn build_alexnet(s: ModelScale, init: &mut WeightInit) -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(48, 48, 3);
    let x = conv(&mut b, init, "conv1", x, s.ch(24), 5, 2, 2, true);
    let x = b.max_pool("pool1", x, 2, 2);
    let x = conv(&mut b, init, "conv2", x, s.ch(48), 3, 1, 1, true);
    let x = b.max_pool("pool2", x, 2, 2);
    let x = conv(&mut b, init, "conv3", x, s.ch(64), 3, 1, 1, true);
    let x = conv(&mut b, init, "conv4", x, s.ch(64), 3, 1, 1, true);
    let x = conv(&mut b, init, "conv5", x, s.ch(48), 3, 1, 1, true);
    let x = b.max_pool("pool3", x, 2, 2);
    let x = dense(&mut b, init, "fc1", x, s.ch(1024), true);
    let x = dense(&mut b, init, "fc2", x, s.ch(512), true);
    let x = dense(&mut b, init, "fc3", x, 2, false);
    let out = b.softmax("softmax", x);
    b.finish(out)
}

/// One ResNet bottleneck block: 1×1 reduce → 3×3 (with batch norm) →
/// 1×1 expand, plus identity or projection shortcut.
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    b: &mut GraphBuilder,
    init: &mut WeightInit,
    name: &str,
    x: NodeId,
    mid: usize,
    out: usize,
    stride: usize,
) -> NodeId {
    let in_ch = b.shape(x).c;
    let c1 = conv(b, init, &format!("{name}_a"), x, mid, 1, 1, 0, true);
    let c2 = conv(b, init, &format!("{name}_b"), c1, mid, 3, stride, 1, false);
    let (g, be, m, v) = init.bn_params(mid);
    let c2 = b.batch_norm(&format!("{name}_bn"), c2, g, be, m, v);
    let c3 = conv(b, init, &format!("{name}_c"), c2, out, 1, 1, 0, false);
    let shortcut = if in_ch != out || stride != 1 {
        conv(
            b,
            init,
            &format!("{name}_proj"),
            x,
            out,
            1,
            stride,
            0,
            false,
        )
    } else {
        x
    };
    b.add(&format!("{name}_add"), c3, shortcut, true)
}

/// ResNet50: stem + [3,4,6,3] bottlenecks (3 convs each) + classifier =
/// 50 conventional layers, on 32×32 scaled ILSVRC (50 classes).
fn build_resnet50(s: ModelScale, init: &mut WeightInit) -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(32, 32, 3);
    let mut x = conv(&mut b, init, "stem", x, s.ch(16), 3, 2, 1, true);
    let stages: [(usize, usize, usize); 4] = [
        (3, s.ch(8), s.ch(32)),
        (4, s.ch(16), s.ch(64)),
        (6, s.ch(32), s.ch(128)),
        (3, s.ch(48), s.ch(192)),
    ];
    for (si, (blocks, mid, out)) in stages.iter().enumerate() {
        for bi in 0..*blocks {
            let stride = if bi == 0 && si > 0 { 2 } else { 1 };
            x = bottleneck(
                &mut b,
                init,
                &format!("s{}b{}", si + 1, bi + 1),
                x,
                *mid,
                *out,
                stride,
            );
        }
    }
    let x = b.global_avg_pool("gap", x);
    let x = dense(&mut b, init, "fc", x, 50, false);
    let out = b.softmax("softmax", x);
    b.finish(out)
}

/// Inception: 4 stem convs + 3 modules (5 convs each) + 1×1 expansion +
/// 2 dense = 22 weight layers, on 32×32 scaled ILSVRC (50 classes).
fn build_inception(s: ModelScale, init: &mut WeightInit) -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(32, 32, 3);
    let x = conv(&mut b, init, "stem1", x, s.ch(16), 3, 2, 1, true);
    let x = conv(&mut b, init, "stem2", x, s.ch(24), 3, 1, 1, true);
    let x = conv(&mut b, init, "stem3", x, s.ch(32), 3, 1, 1, true);
    let x = conv(&mut b, init, "stem4", x, s.ch(32), 1, 1, 0, true);
    let x = b.max_pool("pool1", x, 2, 2);
    let x = inception_module(
        &mut b,
        init,
        "inc1",
        x,
        s.ch(12),
        s.ch(12),
        s.ch(16),
        s.ch(12),
        s.ch(8),
    );
    let x = inception_module(
        &mut b,
        init,
        "inc2",
        x,
        s.ch(16),
        s.ch(16),
        s.ch(24),
        s.ch(16),
        s.ch(8),
    );
    let x = b.max_pool("pool2", x, 2, 2);
    let x = inception_module(
        &mut b,
        init,
        "inc3",
        x,
        s.ch(24),
        s.ch(16),
        s.ch(32),
        s.ch(24),
        s.ch(16),
    );
    let x = conv(&mut b, init, "expand", x, s.ch(256), 1, 1, 0, true);
    let x = b.global_avg_pool("gap", x);
    let x = dense(&mut b, init, "fc1", x, s.ch(896), true);
    let x = dense(&mut b, init, "fc2", x, 50, false);
    let out = b.softmax("softmax", x);
    b.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn probe_image(hw: usize) -> Tensor {
        Tensor::from_vec(
            hw,
            hw,
            3,
            (0..hw * hw * 3)
                .map(|i| ((i as f32) * 0.013).sin())
                .collect(),
        )
    }

    #[test]
    fn all_models_build_and_run_tiny() {
        for kind in ModelKind::ALL {
            let g = kind.build(ModelScale::Tiny);
            let spec = kind.spec();
            let img = probe_image(spec.input_hw);
            let out = g.forward(&img).unwrap();
            assert_eq!(out.len(), spec.classes, "{}", kind.name());
            let sum: f32 = out.data().iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-4,
                "{} softmax sum {sum}",
                kind.name()
            );
        }
    }

    #[test]
    fn parameter_ordering_matches_table1() {
        // Paper: GoogleNet (6.6 MB) < VGG (8.7) < ResNet (102.5)
        //        < Inception (107.3) < AlexNet (233.2).
        let params: Vec<(ModelKind, usize)> = ModelKind::ALL
            .iter()
            .map(|&k| (k, k.build(ModelScale::Paper).param_count()))
            .collect();
        let get = |k: ModelKind| params.iter().find(|(m, _)| *m == k).unwrap().1;
        let (g, v, r, i, a) = (
            get(ModelKind::GoogleNet),
            get(ModelKind::VggNet),
            get(ModelKind::ResNet50),
            get(ModelKind::Inception),
            get(ModelKind::AlexNet),
        );
        assert!(g < v, "GoogleNet {g} < VGG {v}");
        assert!(v < r, "VGG {v} < ResNet {r}");
        assert!(r < i, "ResNet {r} < Inception {i}");
        assert!(i < a, "Inception {i} < AlexNet {a}");
    }

    #[test]
    fn weight_layer_counts_are_structurally_faithful() {
        // Conventional depth counting excludes projection shortcuts and BN.
        let count = |k: ModelKind| {
            let g = k.build(ModelScale::Paper);
            let extra = g
                .nodes()
                .iter()
                .filter(|n| n.name.ends_with("_proj") && k == ModelKind::ResNet50)
                .count();
            g.weight_layer_count() - extra
        };
        assert_eq!(count(ModelKind::VggNet), 6);
        assert_eq!(count(ModelKind::GoogleNet), 21);
        assert_eq!(count(ModelKind::AlexNet), 8);
        assert_eq!(count(ModelKind::ResNet50), 50);
        assert_eq!(count(ModelKind::Inception), 22);
    }

    #[test]
    fn resnet_has_batch_norms_and_they_fold() {
        let g = ModelKind::ResNet50.build(ModelScale::Tiny);
        let bn_count = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, crate::graph::Op::BatchNorm { .. }))
            .count();
        assert_eq!(bn_count, 16, "one BN per bottleneck");
        let folded = g.fold_batch_norms();
        let bn_left = folded
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, crate::graph::Op::BatchNorm { .. }))
            .count();
        assert_eq!(bn_left, 0);
        let img = probe_image(32);
        let a = g.forward(&img).unwrap();
        let b = folded.forward(&img).unwrap();
        for (u, v) in a.data().iter().zip(b.data()) {
            assert!((u - v).abs() < 1e-3, "{u} vs {v}");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = ModelKind::VggNet.build(ModelScale::Paper);
        let b = ModelKind::VggNet.build(ModelScale::Paper);
        assert_eq!(a, b);
    }

    #[test]
    fn different_models_have_different_weights() {
        let a = ModelKind::VggNet.build(ModelScale::Tiny);
        let b = ModelKind::GoogleNet.build(ModelScale::Tiny);
        assert_ne!(a.param_count(), b.param_count());
    }

    #[test]
    fn mac_counts_are_within_simulation_budget() {
        for kind in ModelKind::ALL {
            let macs = kind.build(ModelScale::Paper).mac_count();
            assert!(
                (500_000..30_000_000).contains(&macs),
                "{}: {macs} MACs",
                kind.name()
            );
        }
    }
}

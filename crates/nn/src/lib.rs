//! CNN inference library for the redvolt undervolting study.
//!
//! Implements the software side of the paper's benchmark stack:
//!
//! * [`tensor`] — HWC float and quantized tensors.
//! * [`graph`] — the layer DAG (conv / pool / dense / batch-norm /
//!   residual / inception-concat / softmax) and the float reference
//!   executor.
//! * [`kernels`] — the optimized im2col + blocked-GEMM conv/dense
//!   kernels both executors run on, with a reusable [`kernels::Scratch`]
//!   arena.
//! * [`reference`] — the retained naive kernels: the semantic ground
//!   truth the differential test suite diffs [`kernels`] against.
//! * [`quant`] — DECENT-style symmetric INT8..INT4 post-training
//!   quantization and the integer executor with transient-fault hooks
//!   (this is the datapath the DPU simulator drives, and where
//!   undervolting bit-flips land).
//! * [`models`] — structurally faithful, channel-scaled builders for the
//!   five Table-1 benchmarks (VGGNet, GoogleNet, AlexNet, ResNet50,
//!   Inception).
//! * [`dataset`] — synthetic class-conditional images with Table-1
//!   accuracy calibration.
//! * [`prune`] — magnitude and structured-channel pruning (§6.2).
//! * [`metrics`] — accuracy / top-k / confusion.
//! * [`abft`] — algorithm-based fault tolerance: checksum-augmented
//!   GEMM/conv verification (dual integer checksums, Kahan-tolerance f32
//!   checksum channels) behind a [`abft::DefensePolicy`], the detection
//!   layer of the undervolt SDC defense.
//!
//! # Examples
//!
//! ```
//! use redvolt_nn::dataset::{EvalSet, SyntheticDataset};
//! use redvolt_nn::models::{ModelKind, ModelScale};
//! use redvolt_nn::quant::QuantizedGraph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = ModelKind::VggNet.build(ModelScale::Tiny).fold_batch_norms();
//! let data = SyntheticDataset::new(32, 32, 3, 10, 42);
//! let mut int8 = QuantizedGraph::quantize(&graph, 8, &data.images(4))?;
//!
//! let eval = EvalSet::calibrated(&mut int8, &data, 20, 0.86, 7)?;
//! let preds: Vec<usize> = eval
//!     .images
//!     .iter()
//!     .map(|img| int8.predict(img))
//!     .collect::<Result<_, _>>()?;
//! assert!(eval.accuracy(&preds) > 0.8);
//! # Ok(())
//! # }
//! ```

pub mod abft;
pub mod dataset;
pub mod graph;
pub mod kernels;
pub mod metrics;
pub mod models;
pub mod prune;
pub mod quant;
pub mod reference;
pub mod tensor;
pub mod train;

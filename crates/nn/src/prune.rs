//! Model pruning (the paper's §6.2 study, mirroring the DECENT pruner).
//!
//! Two flavours:
//!
//! * [`unstructured`] — magnitude pruning: zero the smallest weights per
//!   layer. Reduces the *effective* parameter count but not the dense
//!   operation count (useful for sparsity statistics).
//! * [`channel_prune`] — structured channel pruning for sequential models
//!   (the paper evaluates pruning on VGGNet): removes the lowest-L1 output
//!   channels of every convolution and rewires downstream consumers, so
//!   the pruned model genuinely performs *fewer operations* — the paper's
//!   source of the pruned model's higher power-efficiency (Fig. 8b).

use crate::graph::{ConvParams, Graph, GraphBuilder, Op};
use std::fmt;

/// Errors from structured pruning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PruneError {
    /// The graph is not a sequential chain (channel pruning of DAGs with
    /// residual/concat joins is out of scope, as in the paper's study).
    NotSequential {
        /// Offending node name.
        node: String,
    },
    /// The requested fraction is outside `[0, 0.95]`.
    BadFraction {
        /// Requested value.
        fraction: f64,
    },
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::NotSequential { node } => {
                write!(f, "channel pruning requires a sequential graph (at {node})")
            }
            PruneError::BadFraction { fraction } => {
                write!(f, "prune fraction {fraction} outside [0, 0.95]")
            }
        }
    }
}

impl std::error::Error for PruneError {}

/// Fraction of exactly-zero weights across all weight layers.
pub fn sparsity(graph: &Graph) -> f64 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for node in graph.nodes() {
        if let Op::Conv { weights, .. } | Op::Dense { weights, .. } = &node.op {
            zeros += weights.iter().filter(|w| **w == 0.0).count();
            total += weights.len();
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

/// Magnitude pruning: zeroes the smallest-|w| `fraction` of each weight
/// layer. Returns a new graph; MAC counts are unchanged (dense execution).
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn unstructured(graph: &Graph, fraction: f64) -> Graph {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let mut b = GraphBuilder::new();
    let mut id_map = vec![0usize; graph.nodes().len()];
    for (id, node) in graph.nodes().iter().enumerate() {
        let new_id = match &node.op {
            Op::Input { h, w, c } => b.input(*h, *w, *c),
            Op::Conv {
                params,
                weights,
                bias,
            } => {
                let w = zero_smallest(weights, fraction);
                b.conv(&node.name, id_map[node.inputs[0]], *params, w, bias.clone())
            }
            Op::Dense {
                out_len,
                relu,
                weights,
                bias,
                ..
            } => {
                let w = zero_smallest(weights, fraction);
                b.dense(
                    &node.name,
                    id_map[node.inputs[0]],
                    *out_len,
                    *relu,
                    w,
                    bias.clone(),
                )
            }
            Op::MaxPool { k, stride } => {
                b.max_pool(&node.name, id_map[node.inputs[0]], *k, *stride)
            }
            Op::AvgPool { k, stride } => {
                b.avg_pool(&node.name, id_map[node.inputs[0]], *k, *stride)
            }
            Op::GlobalAvgPool => b.global_avg_pool(&node.name, id_map[node.inputs[0]]),
            Op::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                ..
            } => b.batch_norm(
                &node.name,
                id_map[node.inputs[0]],
                gamma.clone(),
                beta.clone(),
                mean.clone(),
                var.clone(),
            ),
            Op::Add { relu } => b.add(
                &node.name,
                id_map[node.inputs[0]],
                id_map[node.inputs[1]],
                *relu,
            ),
            Op::Concat => {
                let ins: Vec<usize> = node.inputs.iter().map(|&i| id_map[i]).collect();
                b.concat(&node.name, &ins)
            }
            Op::Softmax => b.softmax(&node.name, id_map[node.inputs[0]]),
        };
        id_map[id] = new_id;
    }
    b.finish(id_map[graph.output_id()])
}

fn zero_smallest(weights: &[f32], fraction: f64) -> Vec<f32> {
    let mut mags: Vec<f32> = weights.iter().map(|w| w.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    let cut = ((weights.len() as f64) * fraction) as usize;
    if cut == 0 {
        return weights.to_vec();
    }
    let threshold = mags[cut - 1];
    let mut budget = cut;
    weights
        .iter()
        .map(|&w| {
            if w.abs() <= threshold && budget > 0 {
                budget -= 1;
                0.0
            } else {
                w
            }
        })
        .collect()
}

/// Structured channel pruning of a sequential model: removes the
/// `fraction` lowest-L1 output channels from every convolution (keeping at
/// least one) and rewires pools / dense layers; the final classifier layer
/// keeps all outputs. The pruned graph performs fewer MACs.
///
/// # Errors
///
/// Returns [`PruneError::NotSequential`] if the graph has joins (Add /
/// Concat) and [`PruneError::BadFraction`] for fractions outside
/// `[0, 0.95]`.
pub fn channel_prune(graph: &Graph, fraction: f64) -> Result<Graph, PruneError> {
    if !(0.0..=0.95).contains(&fraction) {
        return Err(PruneError::BadFraction { fraction });
    }
    let mut b = GraphBuilder::new();
    let mut id_map = vec![0usize; graph.nodes().len()];
    // Channels of each (old) node's output that survive, in order.
    let mut kept: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes().len()];
    let last_dense = graph
        .nodes()
        .iter()
        .rposition(|n| matches!(n.op, Op::Dense { .. }));

    for (id, node) in graph.nodes().iter().enumerate() {
        match &node.op {
            Op::Add { .. } | Op::Concat => {
                return Err(PruneError::NotSequential {
                    node: node.name.clone(),
                })
            }
            _ => {}
        }
        let new_id = match &node.op {
            Op::Input { h, w, c } => {
                kept[id] = (0..*c).collect();
                b.input(*h, *w, *c)
            }
            Op::Conv {
                params,
                weights,
                bias,
            } => {
                let src = node.inputs[0];
                let in_kept = kept[src].clone();
                // Rank output channels by L1 norm.
                let k2ic = params.k * params.k * params.in_ch;
                let mut norms: Vec<(usize, f32)> = (0..params.out_ch)
                    .map(|oc| {
                        (
                            oc,
                            weights[oc * k2ic..(oc + 1) * k2ic]
                                .iter()
                                .map(|w| w.abs())
                                .sum(),
                        )
                    })
                    .collect();
                norms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                let keep_n = ((params.out_ch as f64) * (1.0 - fraction)).round() as usize;
                let keep_n = keep_n.clamp(1, params.out_ch);
                let mut keep_oc: Vec<usize> = norms[..keep_n].iter().map(|(oc, _)| *oc).collect();
                keep_oc.sort_unstable();
                // Slice weights down to kept output and input channels.
                let new_in = in_kept.len();
                let mut new_w = Vec::with_capacity(keep_oc.len() * params.k * params.k * new_in);
                for &oc in &keep_oc {
                    for ky in 0..params.k {
                        for kx in 0..params.k {
                            let base = oc * k2ic + (ky * params.k + kx) * params.in_ch;
                            for &ic in &in_kept {
                                new_w.push(weights[base + ic]);
                            }
                        }
                    }
                }
                let new_bias: Vec<f32> = keep_oc.iter().map(|&oc| bias[oc]).collect();
                let new_params = ConvParams {
                    in_ch: new_in,
                    out_ch: keep_oc.len(),
                    ..*params
                };
                kept[id] = keep_oc;
                b.conv(&node.name, id_map[src], new_params, new_w, new_bias)
            }
            Op::Dense {
                out_len,
                relu,
                weights,
                bias,
                in_len,
            } => {
                let src = node.inputs[0];
                let src_shape = graph.shape(src);
                let in_kept = kept[src].clone();
                // Column mapping: old flattened index (y*w+x)*c_old + ch.
                let c_old = src_shape.c;
                let mut cols: Vec<usize> = Vec::new();
                for y in 0..src_shape.h {
                    for x in 0..src_shape.w {
                        for &ch in &in_kept {
                            cols.push((y * src_shape.w + x) * c_old + ch);
                        }
                    }
                }
                debug_assert!(cols.len() <= *in_len);
                // Output-unit pruning (skip the classifier).
                let prune_outputs = Some(id) != last_dense;
                let keep_out: Vec<usize> = if prune_outputs {
                    let mut norms: Vec<(usize, f32)> = (0..*out_len)
                        .map(|o| {
                            (
                                o,
                                weights[o * in_len..(o + 1) * in_len]
                                    .iter()
                                    .map(|w| w.abs())
                                    .sum(),
                            )
                        })
                        .collect();
                    norms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                    let n = (((*out_len) as f64) * (1.0 - fraction)).round() as usize;
                    let mut ks: Vec<usize> = norms[..n.clamp(1, *out_len)]
                        .iter()
                        .map(|(o, _)| *o)
                        .collect();
                    ks.sort_unstable();
                    ks
                } else {
                    (0..*out_len).collect()
                };
                let mut new_w = Vec::with_capacity(keep_out.len() * cols.len());
                for &o in &keep_out {
                    let row = &weights[o * in_len..(o + 1) * in_len];
                    for &c in &cols {
                        new_w.push(row[c]);
                    }
                }
                let new_bias: Vec<f32> = keep_out.iter().map(|&o| bias[o]).collect();
                kept[id] = (0..keep_out.len()).collect();
                let out_n = keep_out.len();
                b.dense(&node.name, id_map[src], out_n, *relu, new_w, new_bias)
            }
            Op::MaxPool { k, stride } => {
                kept[id] = kept[node.inputs[0]].clone();
                b.max_pool(&node.name, id_map[node.inputs[0]], *k, *stride)
            }
            Op::AvgPool { k, stride } => {
                kept[id] = kept[node.inputs[0]].clone();
                b.avg_pool(&node.name, id_map[node.inputs[0]], *k, *stride)
            }
            Op::GlobalAvgPool => {
                kept[id] = (0..kept[node.inputs[0]].len()).collect();
                b.global_avg_pool(&node.name, id_map[node.inputs[0]])
            }
            Op::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                ..
            } => {
                let ks = kept[node.inputs[0]].clone();
                let pick = |v: &[f32]| ks.iter().map(|&c| v[c]).collect::<Vec<f32>>();
                let (g, be, m, vv) = (pick(gamma), pick(beta), pick(mean), pick(var));
                kept[id] = (0..ks.len()).collect();
                b.batch_norm(&node.name, id_map[node.inputs[0]], g, be, m, vv)
            }
            Op::Softmax => {
                kept[id] = kept[node.inputs[0]].clone();
                b.softmax(&node.name, id_map[node.inputs[0]])
            }
            Op::Add { .. } | Op::Concat => unreachable!("rejected above"),
        };
        id_map[id] = new_id;
    }
    Ok(b.finish(id_map[graph.output_id()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ModelKind, ModelScale};
    use crate::tensor::Tensor;

    fn vgg() -> Graph {
        ModelKind::VggNet.build(ModelScale::Tiny)
    }

    fn img() -> Tensor {
        Tensor::from_vec(
            32,
            32,
            3,
            (0..3072).map(|i| ((i as f32) * 0.01).sin()).collect(),
        )
    }

    #[test]
    fn unstructured_hits_requested_sparsity() {
        let g = vgg();
        assert!(sparsity(&g) < 0.01);
        let p = unstructured(&g, 0.5);
        let s = sparsity(&p);
        assert!((s - 0.5).abs() < 0.02, "sparsity {s}");
    }

    #[test]
    fn unstructured_keeps_shapes_and_macs() {
        let g = vgg();
        let p = unstructured(&g, 0.5);
        assert_eq!(g.mac_count(), p.mac_count());
        assert_eq!(g.param_count(), p.param_count());
        let out = p.forward(&img()).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn unstructured_zero_fraction_is_identity() {
        let g = vgg();
        let p = unstructured(&g, 0.0);
        assert_eq!(g, p);
    }

    #[test]
    fn channel_prune_reduces_macs_and_params() {
        let g = vgg();
        let p = channel_prune(&g, 0.5).unwrap();
        assert!(
            p.mac_count() < g.mac_count() / 2,
            "{} vs {}",
            p.mac_count(),
            g.mac_count()
        );
        assert!(p.param_count() < g.param_count() / 2);
        // Classifier outputs preserved.
        assert_eq!(p.num_classes(), 10);
        let out = p.forward(&img()).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn channel_prune_zero_fraction_preserves_function() {
        let g = vgg();
        let p = channel_prune(&g, 0.0).unwrap();
        let a = g.forward(&img()).unwrap();
        let b = p.forward(&img()).unwrap();
        for (u, v) in a.data().iter().zip(b.data()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn channel_prune_rejects_dag_models() {
        let g = ModelKind::ResNet50.build(ModelScale::Tiny);
        assert!(matches!(
            channel_prune(&g, 0.3),
            Err(PruneError::NotSequential { .. })
        ));
    }

    #[test]
    fn channel_prune_rejects_bad_fraction() {
        let g = vgg();
        assert!(matches!(
            channel_prune(&g, 0.99),
            Err(PruneError::BadFraction { .. })
        ));
    }

    #[test]
    fn pruned_alexnet_also_works() {
        // AlexNet is the other sequential model.
        let g = ModelKind::AlexNet.build(ModelScale::Tiny);
        let p = channel_prune(&g, 0.4).unwrap();
        assert!(p.mac_count() < g.mac_count());
        assert_eq!(p.num_classes(), 2);
    }
}

//! CNN computation graphs and the float reference executor.
//!
//! Models are DAGs of [`Node`]s (convolutions, pooling, dense layers,
//! batch-norm, residual adds, inception concats, softmax — the layer
//! vocabulary of §2.1.2). The float path is the *reference semantics*; the
//! quantized path in [`crate::quant`] mirrors the DPU's integer datapath
//! and is where undervolting faults are injected.

use crate::tensor::Tensor;
use std::fmt;

/// Identifier of a node within its graph.
pub type NodeId = usize;

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Fused ReLU on the output.
    pub relu: bool,
}

impl ConvParams {
    /// Number of weights.
    pub fn weight_count(&self) -> usize {
        self.out_ch * self.k * self.k * self.in_ch
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

/// A graph operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Graph input of shape `(h, w, c)`.
    Input {
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Input channels.
        c: usize,
    },
    /// 2-D convolution with optional fused ReLU.
    Conv {
        /// Hyper-parameters.
        params: ConvParams,
        /// Weights in `[out_ch][kh][kw][in_ch]` order.
        weights: Vec<f32>,
        /// Per-output-channel bias.
        bias: Vec<f32>,
    },
    /// Fully-connected layer with optional fused ReLU.
    Dense {
        /// Input length (flattened).
        in_len: usize,
        /// Output length.
        out_len: usize,
        /// Fused ReLU.
        relu: bool,
        /// Weights in `[out][in]` order.
        weights: Vec<f32>,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// Max pooling with square window.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling with square window.
    AvgPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to a `(1, 1, c)` vector.
    GlobalAvgPool,
    /// Batch normalization (inference form).
    BatchNorm {
        /// Learned scale per channel.
        gamma: Vec<f32>,
        /// Learned shift per channel.
        beta: Vec<f32>,
        /// Running mean per channel.
        mean: Vec<f32>,
        /// Running variance per channel.
        var: Vec<f32>,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Element-wise sum of two equal-shape inputs (residual shortcut),
    /// with optional fused ReLU.
    Add {
        /// Fused ReLU.
        relu: bool,
    },
    /// Channel concatenation of the inputs (inception module join).
    Concat,
    /// Softmax over the flattened input.
    Softmax,
}

impl Op {
    /// Whether this op carries trainable weights.
    pub fn has_weights(&self) -> bool {
        matches!(self, Op::Conv { .. } | Op::Dense { .. })
    }

    /// Number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        match self {
            Op::Conv { weights, bias, .. } | Op::Dense { weights, bias, .. } => {
                weights.len() + bias.len()
            }
            Op::BatchNorm { gamma, beta, .. } => gamma.len() + beta.len(),
            _ => 0,
        }
    }
}

/// A node: an op plus its input edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Human-readable layer name (unique within the graph).
    pub name: String,
    /// Operation.
    pub op: Op,
    /// Input node ids (topological order guaranteed by the builder).
    pub inputs: Vec<NodeId>,
}

/// Shape of a node output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Shape {
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl Shape {
    /// Element count.
    pub fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Whether the shape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Errors from graph construction or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node references an undefined input.
    BadInput {
        /// Offending node name.
        node: String,
    },
    /// Shapes are inconsistent with the op.
    ShapeMismatch {
        /// Offending node name.
        node: String,
        /// Explanation.
        why: String,
    },
    /// The supplied image does not match the graph input shape.
    BadImage {
        /// Explanation.
        why: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadInput { node } => write!(f, "node {node} references undefined input"),
            GraphError::ShapeMismatch { node, why } => {
                write!(f, "shape mismatch at {node}: {why}")
            }
            GraphError::BadImage { why } => write!(f, "bad input image: {why}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated CNN computation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    nodes: Vec<Node>,
    shapes: Vec<Shape>,
    input: NodeId,
    output: NodeId,
}

/// Incremental graph builder. Nodes must be added in topological order
/// (inputs before consumers), which the returned [`NodeId`]s enforce
/// naturally.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    shapes: Vec<Shape>,
    input: Option<NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    fn push(&mut self, node: Node, shape: Shape) -> NodeId {
        self.nodes.push(node);
        self.shapes.push(shape);
        self.nodes.len() - 1
    }

    /// Shape of an already-added node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn shape(&self, id: NodeId) -> Shape {
        self.shapes[id]
    }

    /// Adds the graph input.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn input(&mut self, h: usize, w: usize, c: usize) -> NodeId {
        assert!(self.input.is_none(), "graph already has an input");
        let id = self.push(
            Node {
                name: "input".to_string(),
                op: Op::Input { h, w, c },
                inputs: vec![],
            },
            Shape { h, w, c },
        );
        self.input = Some(id);
        id
    }

    /// Adds a convolution.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not match the input shape or the weight
    /// buffers have the wrong length.
    pub fn conv(
        &mut self,
        name: &str,
        input: NodeId,
        params: ConvParams,
        weights: Vec<f32>,
        bias: Vec<f32>,
    ) -> NodeId {
        let s = self.shape(input);
        assert_eq!(s.c, params.in_ch, "{name}: in_ch mismatch");
        assert_eq!(weights.len(), params.weight_count(), "{name}: weights len");
        assert_eq!(bias.len(), params.out_ch, "{name}: bias len");
        let (h, w) = params.out_hw(s.h, s.w);
        assert!(h > 0 && w > 0, "{name}: empty output");
        self.push(
            Node {
                name: name.to_string(),
                op: Op::Conv {
                    params,
                    weights,
                    bias,
                },
                inputs: vec![input],
            },
            Shape {
                h,
                w,
                c: params.out_ch,
            },
        )
    }

    /// Adds a dense (fully-connected) layer over the flattened input.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn dense(
        &mut self,
        name: &str,
        input: NodeId,
        out_len: usize,
        relu: bool,
        weights: Vec<f32>,
        bias: Vec<f32>,
    ) -> NodeId {
        let in_len = self.shape(input).len();
        assert_eq!(weights.len(), in_len * out_len, "{name}: weights len");
        assert_eq!(bias.len(), out_len, "{name}: bias len");
        self.push(
            Node {
                name: name.to_string(),
                op: Op::Dense {
                    in_len,
                    out_len,
                    relu,
                    weights,
                    bias,
                },
                inputs: vec![input],
            },
            Shape {
                h: 1,
                w: 1,
                c: out_len,
            },
        )
    }

    /// Adds max pooling.
    ///
    /// # Panics
    ///
    /// Panics if the window is degenerate or larger than the input (see
    /// [`GraphBuilder::try_max_pool`] for the fallible form).
    pub fn max_pool(&mut self, name: &str, input: NodeId, k: usize, stride: usize) -> NodeId {
        match self.try_max_pool(name, input, k, stride) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds max pooling, rejecting invalid windows.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ShapeMismatch`] if `k` or `stride` is zero,
    /// or the window exceeds the input spatial size (which would
    /// underflow the output-shape arithmetic).
    pub fn try_max_pool(
        &mut self,
        name: &str,
        input: NodeId,
        k: usize,
        stride: usize,
    ) -> Result<NodeId, GraphError> {
        let s = self.shape(input);
        let (h, w) = pool_out_hw(name, s, k, stride)?;
        Ok(self.push(
            Node {
                name: name.to_string(),
                op: Op::MaxPool { k, stride },
                inputs: vec![input],
            },
            Shape { h, w, c: s.c },
        ))
    }

    /// Adds average pooling.
    ///
    /// # Panics
    ///
    /// Panics if the window is degenerate or larger than the input (see
    /// [`GraphBuilder::try_avg_pool`] for the fallible form).
    pub fn avg_pool(&mut self, name: &str, input: NodeId, k: usize, stride: usize) -> NodeId {
        match self.try_avg_pool(name, input, k, stride) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds average pooling, rejecting invalid windows.
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::try_max_pool`].
    pub fn try_avg_pool(
        &mut self,
        name: &str,
        input: NodeId,
        k: usize,
        stride: usize,
    ) -> Result<NodeId, GraphError> {
        let s = self.shape(input);
        let (h, w) = pool_out_hw(name, s, k, stride)?;
        Ok(self.push(
            Node {
                name: name.to_string(),
                op: Op::AvgPool { k, stride },
                inputs: vec![input],
            },
            Shape { h, w, c: s.c },
        ))
    }

    /// Adds global average pooling.
    pub fn global_avg_pool(&mut self, name: &str, input: NodeId) -> NodeId {
        let s = self.shape(input);
        self.push(
            Node {
                name: name.to_string(),
                op: Op::GlobalAvgPool,
                inputs: vec![input],
            },
            Shape { h: 1, w: 1, c: s.c },
        )
    }

    /// Adds batch normalization.
    ///
    /// # Panics
    ///
    /// Panics if the per-channel vectors do not match the input channels.
    pub fn batch_norm(
        &mut self,
        name: &str,
        input: NodeId,
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        var: Vec<f32>,
    ) -> NodeId {
        let s = self.shape(input);
        assert!(
            gamma.len() == s.c && beta.len() == s.c && mean.len() == s.c && var.len() == s.c,
            "{name}: per-channel vector length mismatch"
        );
        self.push(
            Node {
                name: name.to_string(),
                op: Op::BatchNorm {
                    gamma,
                    beta,
                    mean,
                    var,
                    eps: 1e-5,
                },
                inputs: vec![input],
            },
            s,
        )
    }

    /// Adds a residual addition of two equal-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, name: &str, a: NodeId, b: NodeId, relu: bool) -> NodeId {
        let sa = self.shape(a);
        let sb = self.shape(b);
        assert_eq!(sa, sb, "{name}: add shape mismatch");
        self.push(
            Node {
                name: name.to_string(),
                op: Op::Add { relu },
                inputs: vec![a, b],
            },
            sa,
        )
    }

    /// Adds a channel concatenation.
    ///
    /// # Panics
    ///
    /// Panics if inputs differ in spatial shape or fewer than two are given.
    pub fn concat(&mut self, name: &str, inputs: &[NodeId]) -> NodeId {
        assert!(inputs.len() >= 2, "{name}: concat needs ≥2 inputs");
        let s0 = self.shape(inputs[0]);
        let mut c = 0;
        for &i in inputs {
            let s = self.shape(i);
            assert!(s.h == s0.h && s.w == s0.w, "{name}: spatial mismatch");
            c += s.c;
        }
        self.push(
            Node {
                name: name.to_string(),
                op: Op::Concat,
                inputs: inputs.to_vec(),
            },
            Shape {
                h: s0.h,
                w: s0.w,
                c,
            },
        )
    }

    /// Adds a softmax over the flattened input.
    pub fn softmax(&mut self, name: &str, input: NodeId) -> NodeId {
        let s = self.shape(input);
        self.push(
            Node {
                name: name.to_string(),
                op: Op::Softmax,
                inputs: vec![input],
            },
            Shape {
                h: 1,
                w: 1,
                c: s.len(),
            },
        )
    }

    /// Finalizes the graph with `output` as the result node.
    ///
    /// # Panics
    ///
    /// Panics if no input was declared or `output` is out of range.
    pub fn finish(self, output: NodeId) -> Graph {
        let input = self.input.expect("graph needs an input");
        assert!(output < self.nodes.len(), "output node out of range");
        Graph {
            nodes: self.nodes,
            shapes: self.shapes,
            input,
            output,
        }
    }
}

/// Pooling output shape, validated so the `usize` subtraction can never
/// underflow (the historical panic when a window exceeded the input
/// spatial size).
fn pool_out_hw(
    name: &str,
    s: Shape,
    k: usize,
    stride: usize,
) -> Result<(usize, usize), GraphError> {
    if k == 0 || stride == 0 {
        return Err(GraphError::ShapeMismatch {
            node: name.to_string(),
            why: format!("pool needs k >= 1 and stride >= 1, got k={k} stride={stride}"),
        });
    }
    if k > s.h || k > s.w {
        return Err(GraphError::ShapeMismatch {
            node: name.to_string(),
            why: format!("pool window {k} exceeds input {}x{}", s.h, s.w),
        });
    }
    Ok(((s.h - k) / stride + 1, (s.w - k) / stride + 1))
}

impl Graph {
    /// The nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Output shape of a node.
    pub fn shape(&self, id: NodeId) -> Shape {
        self.shapes[id]
    }

    /// The input node id.
    pub fn input_id(&self) -> NodeId {
        self.input
    }

    /// The output node id.
    pub fn output_id(&self) -> NodeId {
        self.output
    }

    /// The input shape.
    pub fn input_shape(&self) -> Shape {
        self.shapes[self.input]
    }

    /// Number of output classes (length of the output node).
    pub fn num_classes(&self) -> usize {
        self.shapes[self.output].len()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.nodes.iter().map(|n| n.op.param_count()).sum()
    }

    /// Number of weight-carrying layers (the paper's "#Layers" column).
    pub fn weight_layer_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.has_weights()).count()
    }

    /// Total multiply-accumulate operations per inference.
    pub fn mac_count(&self) -> u64 {
        let mut total = 0u64;
        for (id, node) in self.nodes.iter().enumerate() {
            total += match &node.op {
                Op::Conv { params, .. } => {
                    let s = self.shapes[id];
                    (s.h * s.w * s.c * params.k * params.k * params.in_ch) as u64
                }
                Op::Dense {
                    in_len, out_len, ..
                } => (in_len * out_len) as u64,
                _ => 0,
            };
        }
        total
    }

    /// Runs the float reference path, returning every node's output.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] if `image` does not match the
    /// declared input shape.
    pub fn forward_all(&self, image: &Tensor) -> Result<Vec<Tensor>, GraphError> {
        let mut outs = Vec::new();
        let mut scratch = crate::kernels::Scratch::new();
        self.forward_all_into(image, &mut outs, &mut scratch)?;
        Ok(outs)
    }

    /// Runs the float path with checksum-channel ABFT verification.
    ///
    /// Forwards exactly like [`Graph::forward_all_into`], then — when
    /// `policy` is on — verifies every conv/dense output against the
    /// checksums precomputed in `abft` (see [`crate::abft::FloatAbft`])
    /// and returns the per-pass report. With [`crate::abft::DefenseMode::Off`] the
    /// verification is skipped entirely and the report is empty, so the
    /// outputs are bit-identical to the undefended path either way (the
    /// checksum pass only reads `outs`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] if `image` does not match the
    /// declared input shape.
    pub fn forward_all_checked(
        &self,
        image: &Tensor,
        outs: &mut Vec<Tensor>,
        scratch: &mut crate::kernels::Scratch,
        abft: &mut crate::abft::FloatAbft,
        policy: &crate::abft::DefensePolicy,
    ) -> Result<crate::abft::FloatAbftReport, GraphError> {
        self.forward_all_into(image, outs, scratch)?;
        if !policy.is_on() {
            return Ok(crate::abft::FloatAbftReport::default());
        }
        Ok(abft.verify(self, outs, scratch))
    }

    /// Runs the float reference path into reusable per-node buffers.
    ///
    /// `outs` is resized to one tensor per node and each tensor's
    /// allocation is reused across calls; `scratch` holds the kernels'
    /// im2col panels. After the first call on a given graph, repeated
    /// forward passes perform no heap allocation — the hot loop of the
    /// quantizer's calibration pass.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] if `image` does not match the
    /// declared input shape.
    pub fn forward_all_into(
        &self,
        image: &Tensor,
        outs: &mut Vec<Tensor>,
        scratch: &mut crate::kernels::Scratch,
    ) -> Result<(), GraphError> {
        let in_shape = self.input_shape();
        if image.h() != in_shape.h || image.w() != in_shape.w || image.c() != in_shape.c {
            return Err(GraphError::BadImage {
                why: format!(
                    "expected {}x{}x{}, got {}x{}x{}",
                    in_shape.h,
                    in_shape.w,
                    in_shape.c,
                    image.h(),
                    image.w(),
                    image.c()
                ),
            });
        }
        outs.resize_with(self.nodes.len(), || Tensor::zeros(0, 0, 0));
        for (id, node) in self.nodes.iter().enumerate() {
            let shape = self.shapes[id];
            // Inputs always precede consumers, so split the buffer list
            // at `id`: everything before is readable, slot `id` writable.
            let (before, rest) = outs.split_at_mut(id);
            let out = &mut rest[0];
            out.reset(shape.h, shape.w, shape.c);
            match &node.op {
                Op::Input { .. } => out.data_mut().copy_from_slice(image.data()),
                Op::Conv {
                    params,
                    weights,
                    bias,
                } => crate::kernels::conv2d_f32_into(
                    &before[node.inputs[0]],
                    params,
                    weights,
                    bias,
                    scratch,
                    out.data_mut(),
                ),
                Op::Dense {
                    out_len,
                    relu,
                    weights,
                    bias,
                    ..
                } => crate::kernels::dense_f32_into(
                    before[node.inputs[0]].data(),
                    *out_len,
                    *relu,
                    weights,
                    bias,
                    out.data_mut(),
                ),
                Op::MaxPool { k, stride } => {
                    max_pool_into(&before[node.inputs[0]], *k, *stride, out)
                }
                Op::AvgPool { k, stride } => {
                    avg_pool_into(&before[node.inputs[0]], *k, *stride, out)
                }
                Op::GlobalAvgPool => global_avg_pool_into(&before[node.inputs[0]], out),
                Op::BatchNorm {
                    gamma,
                    beta,
                    mean,
                    var,
                    eps,
                } => batch_norm_into(&before[node.inputs[0]], gamma, beta, mean, var, *eps, out),
                Op::Add { relu } => {
                    add_into(&before[node.inputs[0]], &before[node.inputs[1]], *relu, out)
                }
                Op::Concat => concat_into(
                    &node.inputs.iter().map(|&i| &before[i]).collect::<Vec<_>>(),
                    out,
                ),
                Op::Softmax => softmax_into(&before[node.inputs[0]], out),
            }
        }
        Ok(())
    }

    /// Runs the float reference path and returns the output tensor.
    ///
    /// # Errors
    ///
    /// See [`Graph::forward_all`].
    pub fn forward(&self, image: &Tensor) -> Result<Tensor, GraphError> {
        let mut outs = self.forward_all(image)?;
        Ok(outs.swap_remove(self.output))
    }

    /// Predicted class for an image (argmax of the output).
    ///
    /// # Errors
    ///
    /// See [`Graph::forward_all`].
    pub fn predict(&self, image: &Tensor) -> Result<usize, GraphError> {
        Ok(self.forward(image)?.argmax())
    }

    /// Centers the biases of every dense layer so that pre-activation
    /// outputs have zero mean over `images`.
    ///
    /// Untrained (seeded-random) ReLU networks accumulate a large positive
    /// mean activation, which makes one logit dominate for *every* input —
    /// a collapsed classifier. Training removes this offset; for the
    /// synthetic benchmark models we remove it explicitly, which restores
    /// input-dependent, diverse predictions (the property the paper's
    /// fault-sensitivity results rely on). Layers are processed in
    /// topological order, re-running the forward pass after each
    /// adjustment so downstream statistics see the centered values.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::BadImage`] from the forward passes.
    pub fn center_dense_biases(&mut self, images: &[Tensor]) -> Result<(), GraphError> {
        if images.is_empty() {
            return Ok(());
        }
        let dense_ids: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Dense { .. }))
            .map(|(id, _)| id)
            .collect();
        for id in dense_ids {
            // Mean pre-activation per output unit over the image set.
            let src = self.nodes[id].inputs[0];
            let mut means: Vec<f64> = Vec::new();
            for img in images {
                let outs = self.forward_all(img)?;
                let x = outs[src].data();
                let Op::Dense {
                    in_len,
                    out_len,
                    weights,
                    bias,
                    ..
                } = &self.nodes[id].op
                else {
                    unreachable!("id selected as dense");
                };
                if means.is_empty() {
                    means = vec![0.0; *out_len];
                }
                for (o, m) in means.iter_mut().enumerate() {
                    let ws = &weights[o * in_len..(o + 1) * in_len];
                    let z: f32 = bias[o] + x.iter().zip(ws).map(|(a, b)| a * b).sum::<f32>();
                    *m += f64::from(z);
                }
            }
            let n = images.len() as f64;
            if let Op::Dense { bias, .. } = &mut self.nodes[id].op {
                for (b, m) in bias.iter_mut().zip(&means) {
                    *b -= (m / n) as f32;
                }
            }
        }
        Ok(())
    }

    /// Trains the final dense layer (a linear readout) on labelled images
    /// by softmax regression, leaving every other layer fixed.
    ///
    /// The benchmark models use seeded-random convolutional features (the
    /// study measures inference under faults, not learning), but an
    /// *untrained* readout has near-zero decision margins, which makes the
    /// classifier pathologically sensitive to quantization noise — unlike
    /// the trained networks of the paper, which tolerate INT4..INT7
    /// (Fig. 7). Fitting the readout restores realistic margins: features
    /// are extracted once with the frozen backbone, then the last dense
    /// layer is optimized with gradient descent and L2 decay.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::BadImage`] from feature extraction.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no dense layer, the slices differ in
    /// length, or a label is out of range.
    pub fn fit_readout(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        epochs: usize,
        learning_rate: f32,
    ) -> Result<(), GraphError> {
        assert_eq!(images.len(), labels.len(), "images/labels mismatch");
        let readout = self
            .nodes
            .iter()
            .rposition(|n| matches!(n.op, Op::Dense { .. }))
            .expect("graph has a dense readout layer");
        let src = self.nodes[readout].inputs[0];
        // Frozen-backbone features, extracted once.
        let mut features: Vec<Vec<f32>> = Vec::with_capacity(images.len());
        for img in images {
            let outs = self.forward_all(img)?;
            features.push(outs[src].data().to_vec());
        }
        let Op::Dense {
            in_len,
            out_len,
            weights,
            bias,
            ..
        } = &mut self.nodes[readout].op
        else {
            unreachable!("readout selected as dense");
        };
        crate::train::fit_softmax_regression(
            &features,
            labels,
            *in_len,
            *out_len,
            weights,
            bias,
            epochs,
            learning_rate,
        );
        Ok(())
    }

    /// Folds every `Conv → BatchNorm` pair into the convolution and removes
    /// the BN nodes, as DPU toolchains do before deployment. Standalone BN
    /// nodes (not directly after a conv) are left untouched.
    pub fn fold_batch_norms(&self) -> Graph {
        let mut nodes = self.nodes.clone();
        // For each BN whose single input is a conv consumed only by it,
        // rewrite the conv and replace BN with identity rewiring.
        let mut replace: Vec<Option<NodeId>> = vec![None; nodes.len()];
        let mut consumers = vec![0usize; nodes.len()];
        for n in &nodes {
            for &i in &n.inputs {
                consumers[i] += 1;
            }
        }
        for id in 0..nodes.len() {
            let Op::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                eps,
            } = nodes[id].op.clone()
            else {
                continue;
            };
            let src = nodes[id].inputs[0];
            if consumers[src] != 1 {
                continue;
            }
            let Op::Conv {
                params,
                weights,
                bias,
            } = &mut nodes[src].op
            else {
                continue;
            };
            // BN(conv(x)) = gamma*(conv(x)-mean)/sqrt(var+eps) + beta
            //            = conv'(x) with w' = w*g/s, b' = (b-mean)*g/s + beta
            let k2ic = params.k * params.k * params.in_ch;
            for oc in 0..params.out_ch {
                let s = (var[oc] + eps).sqrt();
                let g = gamma[oc] / s;
                for w in &mut weights[oc * k2ic..(oc + 1) * k2ic] {
                    *w *= g;
                }
                bias[oc] = (bias[oc] - mean[oc]) * g + beta[oc];
            }
            replace[id] = Some(src);
        }
        // Rewire consumers of folded BN nodes, then drop them.
        let resolve = |mut id: NodeId| -> NodeId {
            while let Some(src) = replace[id] {
                id = src;
            }
            id
        };
        let mut keep_map: Vec<Option<NodeId>> = vec![None; nodes.len()];
        let mut new_nodes = Vec::new();
        let mut new_shapes = Vec::new();
        for (id, mut node) in nodes.into_iter().enumerate() {
            if replace[id].is_some() {
                continue;
            }
            for input in &mut node.inputs {
                let target = resolve(*input);
                *input = keep_map[target].expect("inputs precede consumers");
            }
            keep_map[id] = Some(new_nodes.len());
            new_nodes.push(node);
            new_shapes.push(self.shapes[id]);
        }
        Graph {
            nodes: new_nodes,
            shapes: new_shapes,
            input: keep_map[resolve(self.input)].expect("input kept"),
            output: keep_map[resolve(self.output)].expect("output kept"),
        }
    }
}

fn max_pool_into(input: &Tensor, k: usize, stride: usize, out: &mut Tensor) {
    let (oh, ow) = (out.h(), out.w());
    for oy in 0..oh {
        for ox in 0..ow {
            for c in 0..input.c() {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..k {
                    for kx in 0..k {
                        m = m.max(input.at(oy * stride + ky, ox * stride + kx, c));
                    }
                }
                out.set(oy, ox, c, m);
            }
        }
    }
}

fn avg_pool_into(input: &Tensor, k: usize, stride: usize, out: &mut Tensor) {
    let (oh, ow) = (out.h(), out.w());
    let norm = 1.0 / (k * k) as f32;
    for oy in 0..oh {
        for ox in 0..ow {
            for c in 0..input.c() {
                let mut s = 0.0;
                for ky in 0..k {
                    for kx in 0..k {
                        s += input.at(oy * stride + ky, ox * stride + kx, c);
                    }
                }
                out.set(oy, ox, c, s * norm);
            }
        }
    }
}

fn global_avg_pool_into(input: &Tensor, out: &mut Tensor) {
    let n = (input.h() * input.w()) as f32;
    let acc = out.data_mut();
    for y in 0..input.h() {
        for x in 0..input.w() {
            for (c, a) in acc.iter_mut().enumerate() {
                *a += input.at(y, x, c);
            }
        }
    }
    for v in acc {
        *v /= n;
    }
}

fn batch_norm_into(
    input: &Tensor,
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    eps: f32,
    out: &mut Tensor,
) {
    let c = input.c();
    for (i, (v, &x)) in out.data_mut().iter_mut().zip(input.data()).enumerate() {
        let ch = i % c;
        *v = gamma[ch] * (x - mean[ch]) / (var[ch] + eps).sqrt() + beta[ch];
    }
}

fn add_into(a: &Tensor, b: &Tensor, relu: bool, out: &mut Tensor) {
    for ((o, &av), &bv) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = av + bv;
        if relu {
            *o = o.max(0.0);
        }
    }
}

fn concat_into(inputs: &[&Tensor], out: &mut Tensor) {
    let h = inputs[0].h();
    let w = inputs[0].w();
    for y in 0..h {
        for x in 0..w {
            let mut off = 0;
            for t in inputs {
                for ch in 0..t.c() {
                    out.set(y, x, off + ch, t.at(y, x, ch));
                }
                off += t.c();
            }
        }
    }
}

fn softmax_into(input: &Tensor, out: &mut Tensor) {
    let x = input.data();
    let m = x.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps = out.data_mut();
    for (e, &v) in exps.iter_mut().zip(x) {
        *e = (v - m).exp();
    }
    let sum: f32 = exps.iter().sum();
    for e in exps {
        *e /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_conv(relu: bool) -> (ConvParams, Vec<f32>, Vec<f32>) {
        // 1x1 conv, 1 channel, weight 1, bias 0: identity map.
        (
            ConvParams {
                in_ch: 1,
                out_ch: 1,
                k: 1,
                stride: 1,
                pad: 0,
                relu,
            },
            vec![1.0],
            vec![0.0],
        )
    }

    #[test]
    fn conv_identity_preserves_input() {
        let mut b = GraphBuilder::new();
        let x = b.input(3, 3, 1);
        let (p, w, bias) = identity_conv(false);
        let y = b.conv("c", x, p, w, bias);
        let g = b.finish(y);
        let img = Tensor::from_vec(3, 3, 1, (0..9).map(|i| i as f32 - 4.0).collect());
        let out = g.forward(&img).unwrap();
        assert_eq!(out.data(), img.data());
    }

    #[test]
    fn conv_relu_clamps_negatives() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 1);
        let (p, w, bias) = identity_conv(true);
        let y = b.conv("c", x, p, w, bias);
        let g = b.finish(y);
        let img = Tensor::from_vec(2, 2, 1, vec![-1.0, 2.0, -3.0, 4.0]);
        assert_eq!(g.forward(&img).unwrap().data(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn conv_3x3_known_answer() {
        // All-ones 3x3 kernel over an all-ones 3x3 image, pad 1:
        // center sees 9 ones, edges 6, corners 4.
        let mut b = GraphBuilder::new();
        let x = b.input(3, 3, 1);
        let p = ConvParams {
            in_ch: 1,
            out_ch: 1,
            k: 3,
            stride: 1,
            pad: 1,
            relu: false,
        };
        let y = b.conv("c", x, p, vec![1.0; 9], vec![0.0]);
        let g = b.finish(y);
        let img = Tensor::from_vec(3, 3, 1, vec![1.0; 9]);
        let out = g.forward(&img).unwrap();
        assert_eq!(out.data(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn conv_stride_two_downsamples() {
        let mut b = GraphBuilder::new();
        let x = b.input(4, 4, 1);
        let p = ConvParams {
            in_ch: 1,
            out_ch: 1,
            k: 1,
            stride: 2,
            pad: 0,
            relu: false,
        };
        let y = b.conv("c", x, p, vec![1.0], vec![0.0]);
        let g = b.finish(y);
        assert_eq!(g.shape(y), Shape { h: 2, w: 2, c: 1 });
    }

    #[test]
    fn dense_known_answer() {
        let mut b = GraphBuilder::new();
        let x = b.input(1, 1, 3);
        let y = b.dense(
            "fc",
            x,
            2,
            false,
            vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5],
            vec![10.0, 0.0],
        );
        let g = b.finish(y);
        let out = g.forward(&Tensor::vector(vec![1.0, 2.0, 3.0])).unwrap();
        assert_eq!(out.data(), &[10.0 + 1.0 - 3.0, 3.0]);
    }

    #[test]
    fn max_and_avg_pool() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 1);
        let m = b.max_pool("mp", x, 2, 2);
        let g = b.finish(m);
        let img = Tensor::from_vec(2, 2, 1, vec![1.0, 5.0, 3.0, 2.0]);
        assert_eq!(g.forward(&img).unwrap().data(), &[5.0]);

        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 1);
        let a = b.avg_pool("ap", x, 2, 2);
        let g = b.finish(a);
        assert_eq!(g.forward(&img).unwrap().data(), &[2.75]);
    }

    /// Regression: a pooling window larger than the input used to
    /// underflow the `usize` output-shape subtraction and panic inside
    /// the builder. It now reports a structured error.
    #[test]
    fn oversized_pool_window_is_an_error_not_a_panic() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 3, 1);
        let err = b.try_max_pool("mp", x, 4, 1).unwrap_err();
        assert!(
            matches!(&err, GraphError::ShapeMismatch { node, .. } if node == "mp"),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("exceeds input 2x3"), "{err}");
        // Same guard on the width-only overflow and on avg pooling.
        assert!(b.try_max_pool("mp2", x, 3, 1).is_err(), "k > w only");
        assert!(b.try_avg_pool("ap", x, 4, 2).is_err());
        // A window of exactly the input size is the degenerate-but-valid
        // boundary: 1x1 output.
        let ok = b.try_max_pool("fit", x, 2, 1).unwrap();
        assert_eq!(b.shape(ok), Shape { h: 1, w: 2, c: 1 });
    }

    #[test]
    fn degenerate_pool_parameters_are_errors() {
        let mut b = GraphBuilder::new();
        let x = b.input(4, 4, 1);
        assert!(b.try_max_pool("k0", x, 0, 1).is_err());
        assert!(b.try_max_pool("s0", x, 2, 0).is_err());
        assert!(b.try_avg_pool("k0", x, 0, 1).is_err());
        assert!(b.try_avg_pool("s0", x, 2, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "pool window 5 exceeds input 2x2")]
    fn infallible_pool_builder_panics_with_the_error_message() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 1);
        b.max_pool("mp", x, 5, 1);
    }

    #[test]
    fn global_avg_pool_per_channel() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 2);
        let p = b.global_avg_pool("gap", x);
        let g = b.finish(p);
        let img = Tensor::from_vec(2, 2, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        assert_eq!(g.forward(&img).unwrap().data(), &[2.5, 25.0]);
    }

    #[test]
    fn residual_add_and_relu() {
        let mut b = GraphBuilder::new();
        let x = b.input(1, 1, 2);
        let (_, _, _) = identity_conv(false);
        let y = b.add("res", x, x, true);
        let g = b.finish(y);
        let out = g.forward(&Tensor::vector(vec![1.0, -2.0])).unwrap();
        assert_eq!(out.data(), &[2.0, 0.0]);
    }

    #[test]
    fn concat_stacks_channels() {
        let mut b = GraphBuilder::new();
        let x = b.input(1, 1, 2);
        let y = b.concat("cat", &[x, x]);
        let g = b.finish(y);
        let out = g.forward(&Tensor::vector(vec![1.0, 2.0])).unwrap();
        assert_eq!(out.data(), &[1.0, 2.0, 1.0, 2.0]);
        assert_eq!(out.c(), 4);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut b = GraphBuilder::new();
        let x = b.input(1, 1, 3);
        let s = b.softmax("sm", x);
        let g = b.finish(s);
        let out = g.forward(&Tensor::vector(vec![1.0, 3.0, 2.0])).unwrap();
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(out.argmax(), 1);
    }

    #[test]
    fn batch_norm_normalizes() {
        let mut b = GraphBuilder::new();
        let x = b.input(1, 1, 2);
        let y = b.batch_norm(
            "bn",
            x,
            vec![2.0, 1.0],
            vec![1.0, 0.0],
            vec![5.0, 0.0],
            vec![4.0, 1.0],
        );
        let g = b.finish(y);
        let out = g.forward(&Tensor::vector(vec![7.0, 3.0])).unwrap();
        // ch0: 2*(7-5)/2 + 1 = 3; ch1: (3-0)/1 = 3.
        assert!((out.data()[0] - 3.0).abs() < 1e-4);
        assert!((out.data()[1] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn fold_batch_norm_matches_unfolded() {
        let mut b = GraphBuilder::new();
        let x = b.input(3, 3, 2);
        let p = ConvParams {
            in_ch: 2,
            out_ch: 2,
            k: 3,
            stride: 1,
            pad: 1,
            relu: false,
        };
        let w: Vec<f32> = (0..p.weight_count())
            .map(|i| (i as f32 * 0.7).sin())
            .collect();
        let y = b.conv("c", x, p, w, vec![0.1, -0.2]);
        let z = b.batch_norm(
            "bn",
            y,
            vec![1.5, 0.5],
            vec![0.3, -0.1],
            vec![0.2, 0.4],
            vec![2.0, 0.5],
        );
        let g = b.finish(z);
        let folded = g.fold_batch_norms();
        assert_eq!(folded.nodes().len(), g.nodes().len() - 1);
        let img = Tensor::from_vec(3, 3, 2, (0..18).map(|i| (i as f32 * 0.3).cos()).collect());
        let a = g.forward(&img).unwrap();
        let b2 = folded.forward(&img).unwrap();
        for (u, v) in a.data().iter().zip(b2.data()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn counts_params_layers_and_macs() {
        let mut b = GraphBuilder::new();
        let x = b.input(4, 4, 1);
        let p = ConvParams {
            in_ch: 1,
            out_ch: 2,
            k: 3,
            stride: 1,
            pad: 1,
            relu: true,
        };
        let y = b.conv("c", x, p, vec![0.0; 18], vec![0.0; 2]);
        let z = b.dense("fc", y, 3, false, vec![0.0; 32 * 3], vec![0.0; 3]);
        let g = b.finish(z);
        assert_eq!(g.weight_layer_count(), 2);
        assert_eq!(g.param_count(), 18 + 2 + 96 + 3);
        // conv: 4*4*2 outputs * 9 macs = 288; dense: 96.
        assert_eq!(g.mac_count(), 288 + 96);
    }

    #[test]
    fn rejects_wrong_image_shape() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 1);
        let g = b.finish(x);
        assert!(matches!(
            g.forward(&Tensor::zeros(3, 3, 1)),
            Err(GraphError::BadImage { .. })
        ));
    }
}

//! Post-training quantization and the integer (DPU-style) executor.
//!
//! Mirrors the DECENT quantizer of the Xilinx DNNDK toolchain (§3.1):
//! symmetric per-tensor linear quantization of weights and activations to
//! `INTk` (k = 8 baseline; the Fig. 7 study sweeps k down to 4), 32-bit
//! accumulators, and a requantization step between layers.
//!
//! The quantized executor is the *faultable* datapath: undervolting timing
//! faults manifest as transient bit flips in weight fetches, MAC
//! accumulators and activation buffers. The executor asks a
//! [`FaultInjector`] for a fault plan per layer execution and applies it
//! transiently (weights are restored afterwards — faults in the paper's
//! setup are timing errors on reads, not permanent storage corruption).

use crate::graph::{ConvParams, Graph, GraphError, Op, Shape};
use crate::tensor::{QTensor, Tensor};
use redvolt_num::fixed::{IntFormat, QuantScale};

/// A planned transient bit flip: element index and bit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Index of the affected element in the target buffer.
    pub index: usize,
    /// Bit position within the element's storage.
    pub bit: u32,
}

/// Source of per-layer fault plans.
///
/// Implemented by `redvolt-faults` (rates derived from the board's timing
/// slack) and by [`NoFaults`] for clean execution.
pub trait FaultInjector {
    /// Plans transient flips in the `len` weight codes (of `bits` width)
    /// fetched for this layer execution.
    fn plan_weight_faults(&mut self, layer: &str, len: usize, bits: u32) -> Vec<BitFlip>;

    /// Plans flips in the `len` output accumulators of this layer, where
    /// each accumulator is produced by `macs_per_out` MAC operations.
    fn plan_accumulator_faults(
        &mut self,
        layer: &str,
        len: usize,
        macs_per_out: usize,
    ) -> Vec<BitFlip>;

    /// Plans flips in the `len` activation codes written by this layer.
    fn plan_activation_faults(&mut self, layer: &str, len: usize, bits: u32) -> Vec<BitFlip>;
}

/// The always-clean injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn plan_weight_faults(&mut self, _layer: &str, _len: usize, _bits: u32) -> Vec<BitFlip> {
        Vec::new()
    }

    fn plan_accumulator_faults(
        &mut self,
        _layer: &str,
        _len: usize,
        _macs_per_out: usize,
    ) -> Vec<BitFlip> {
        Vec::new()
    }

    fn plan_activation_faults(&mut self, _layer: &str, _len: usize, _bits: u32) -> Vec<BitFlip> {
        Vec::new()
    }
}

/// A quantized layer.
#[derive(Debug, Clone)]
enum QOp {
    Input,
    Conv {
        params: ConvParams,
        wcodes: Vec<i8>,
        /// Per-output-channel weight scales (DECENT-style per-channel
        /// symmetric quantization, which keeps narrow formats usable).
        wscales: Vec<f32>,
        bias_q: Vec<i32>,
    },
    Dense {
        in_len: usize,
        out_len: usize,
        relu: bool,
        wcodes: Vec<i8>,
        /// Per-output-unit weight scales.
        wscales: Vec<f32>,
        bias_q: Vec<i32>,
    },
    MaxPool {
        k: usize,
        stride: usize,
    },
    AvgPool {
        k: usize,
        stride: usize,
    },
    GlobalAvgPool,
    Add {
        relu: bool,
    },
    Concat,
    Softmax,
}

#[derive(Debug, Clone)]
struct QNode {
    name: String,
    op: QOp,
    inputs: Vec<usize>,
    shape: Shape,
    /// Activation scale of this node's output codes.
    out_scale: f32,
}

/// Weight-scale granularity of the quantizer.
///
/// Per-channel is the production default (what DECENT-class tools use —
/// it keeps INT4..INT7 usable); per-tensor exists for the ablation bench
/// that demonstrates *why* per-channel matters on narrow formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One weight scale per output channel / output unit.
    #[default]
    PerChannel,
    /// A single weight scale per layer.
    PerTensor,
}

/// A graph quantized to `INTk`, executable on the integer datapath.
///
/// # Examples
///
/// ```
/// use redvolt_nn::graph::{ConvParams, GraphBuilder};
/// use redvolt_nn::quant::QuantizedGraph;
/// use redvolt_nn::tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new();
/// let x = b.input(4, 4, 1);
/// let p = ConvParams { in_ch: 1, out_ch: 1, k: 1, stride: 1, pad: 0, relu: false };
/// let y = b.conv("c", x, p, vec![0.5], vec![0.0]);
/// let g = b.finish(y);
///
/// let calib = [Tensor::from_vec(4, 4, 1, (0..16).map(|i| i as f32 / 16.0).collect())];
/// let mut q = QuantizedGraph::quantize(&g, 8, &calib)?;
/// let out = q.forward(&calib[0])?;
/// assert!((out.data()[0] - 0.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedGraph {
    nodes: Vec<QNode>,
    input: usize,
    output: usize,
    format: IntFormat,
    num_classes: usize,
}

impl QuantizedGraph {
    /// Quantizes `graph` to `bits` precision, calibrating activation scales
    /// on `calib_images` (at least one image required).
    ///
    /// Batch-norm layers must be folded first (see
    /// [`Graph::fold_batch_norms`]), as in the DPU toolchain.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if a calibration image has the wrong shape or
    /// the graph still contains batch-norm nodes.
    ///
    /// # Panics
    ///
    /// Panics if `calib_images` is empty or `bits` is not in `1..=8`.
    pub fn quantize(graph: &Graph, bits: u32, calib_images: &[Tensor]) -> Result<Self, GraphError> {
        QuantizedGraph::quantize_with(graph, bits, calib_images, Granularity::PerChannel)
    }

    /// Like [`QuantizedGraph::quantize`] with an explicit weight-scale
    /// granularity.
    ///
    /// # Errors
    ///
    /// See [`QuantizedGraph::quantize`].
    ///
    /// # Panics
    ///
    /// See [`QuantizedGraph::quantize`].
    pub fn quantize_with(
        graph: &Graph,
        bits: u32,
        calib_images: &[Tensor],
        granularity: Granularity,
    ) -> Result<Self, GraphError> {
        assert!(!calib_images.is_empty(), "need calibration images");
        let format = IntFormat::new(bits).expect("bits in 1..=8");

        // Per-node activation ranges from the float reference path.
        let mut max_abs = vec![0.0f32; graph.nodes().len()];
        for img in calib_images {
            let outs = graph.forward_all(img)?;
            for (m, t) in max_abs.iter_mut().zip(&outs) {
                *m = m.max(t.max_abs());
            }
        }

        let max_code = format.max_value() as f32;
        let mut nodes = Vec::with_capacity(graph.nodes().len());
        for (id, node) in graph.nodes().iter().enumerate() {
            let out_scale = if max_abs[id] > 0.0 {
                max_abs[id] / max_code
            } else {
                1.0
            };
            let op = match &node.op {
                Op::Input { .. } => QOp::Input,
                Op::Conv {
                    params,
                    weights,
                    bias,
                } => {
                    let in_scale = scale_of(&nodes, node.inputs[0]);
                    let k2ic = params.k * params.k * params.in_ch;
                    let tensor_max = f64::from(weights.iter().fold(0.0f32, |m, &w| m.max(w.abs())));
                    let mut wcodes = Vec::with_capacity(weights.len());
                    let mut wscales = Vec::with_capacity(params.out_ch);
                    let mut bias_q = Vec::with_capacity(params.out_ch);
                    for oc in 0..params.out_ch {
                        let block = &weights[oc * k2ic..(oc + 1) * k2ic];
                        let max_abs = match granularity {
                            Granularity::PerChannel => {
                                f64::from(block.iter().fold(0.0f32, |m, &w| m.max(w.abs())))
                            }
                            Granularity::PerTensor => tensor_max,
                        };
                        let wq = QuantScale::for_max_abs(max_abs, format);
                        wcodes.extend(block.iter().map(|&w| wq.quantize(f64::from(w)) as i8));
                        let wscale = wq.scale as f32;
                        wscales.push(wscale);
                        bias_q.push((bias[oc] / (in_scale * wscale)).round() as i32);
                    }
                    QOp::Conv {
                        params: *params,
                        wcodes,
                        wscales,
                        bias_q,
                    }
                }
                Op::Dense {
                    in_len,
                    out_len,
                    relu,
                    weights,
                    bias,
                } => {
                    let in_scale = scale_of(&nodes, node.inputs[0]);
                    let tensor_max = f64::from(weights.iter().fold(0.0f32, |m, &w| m.max(w.abs())));
                    let mut wcodes = Vec::with_capacity(weights.len());
                    let mut wscales = Vec::with_capacity(*out_len);
                    let mut bias_q = Vec::with_capacity(*out_len);
                    for o in 0..*out_len {
                        let row = &weights[o * in_len..(o + 1) * in_len];
                        let max_abs = match granularity {
                            Granularity::PerChannel => {
                                f64::from(row.iter().fold(0.0f32, |m, &w| m.max(w.abs())))
                            }
                            Granularity::PerTensor => tensor_max,
                        };
                        let wq = QuantScale::for_max_abs(max_abs, format);
                        wcodes.extend(row.iter().map(|&w| wq.quantize(f64::from(w)) as i8));
                        let wscale = wq.scale as f32;
                        wscales.push(wscale);
                        bias_q.push((bias[o] / (in_scale * wscale)).round() as i32);
                    }
                    QOp::Dense {
                        in_len: *in_len,
                        out_len: *out_len,
                        relu: *relu,
                        wcodes,
                        wscales,
                        bias_q,
                    }
                }
                Op::MaxPool { k, stride } => QOp::MaxPool {
                    k: *k,
                    stride: *stride,
                },
                Op::AvgPool { k, stride } => QOp::AvgPool {
                    k: *k,
                    stride: *stride,
                },
                Op::GlobalAvgPool => QOp::GlobalAvgPool,
                Op::Add { relu } => QOp::Add { relu: *relu },
                Op::Concat => QOp::Concat,
                Op::Softmax => QOp::Softmax,
                Op::BatchNorm { .. } => {
                    return Err(GraphError::ShapeMismatch {
                        node: node.name.clone(),
                        why: "fold batch norms before quantization".to_string(),
                    })
                }
            };
            nodes.push(QNode {
                name: node.name.clone(),
                op,
                inputs: node.inputs.clone(),
                shape: graph.shape(id),
                out_scale,
            });
        }
        Ok(QuantizedGraph {
            nodes,
            input: graph.input_id(),
            output: graph.output_id(),
            format,
            num_classes: graph.num_classes(),
        })
    }

    /// Operand precision in bits.
    pub fn bits(&self) -> u32 {
        self.format.bits()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total quantized weight codes (fault-site count for weight fetches).
    pub fn weight_code_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                QOp::Conv { wcodes, .. } | QOp::Dense { wcodes, .. } => wcodes.len(),
                _ => 0,
            })
            .sum()
    }

    /// Root-mean-square error between this graph's dequantized weights
    /// and the float `reference` weights (a quantization-fidelity
    /// diagnostic; the ablation bench uses it to compare scale
    /// granularities).
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not have the same topology.
    pub fn weight_rms_error(&self, reference: &Graph) -> f64 {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for (qn, rn) in self.nodes.iter().zip(reference.nodes()) {
            match (&qn.op, &rn.op) {
                (
                    QOp::Conv {
                        params,
                        wcodes,
                        wscales,
                        ..
                    },
                    Op::Conv { weights, .. },
                ) => {
                    let k2ic = params.k * params.k * params.in_ch;
                    for (i, &w) in weights.iter().enumerate() {
                        let deq = f32::from(wcodes[i]) * wscales[i / k2ic];
                        sum += f64::from((deq - w) * (deq - w));
                    }
                    count += weights.len();
                }
                (
                    QOp::Dense {
                        in_len,
                        wcodes,
                        wscales,
                        ..
                    },
                    Op::Dense { weights, .. },
                ) => {
                    for (i, &w) in weights.iter().enumerate() {
                        let deq = f32::from(wcodes[i]) * wscales[i / in_len];
                        sum += f64::from((deq - w) * (deq - w));
                    }
                    count += weights.len();
                }
                (QOp::Input, Op::Input { .. }) => {}
                (_, Op::BatchNorm { .. }) => panic!("reference has unfolded batch norm"),
                _ => {}
            }
        }
        if count == 0 {
            0.0
        } else {
            (sum / count as f64).sqrt()
        }
    }

    /// Runs the quantized path without faults, returning float logits.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn forward(&mut self, image: &Tensor) -> Result<Tensor, GraphError> {
        self.forward_with(image, &mut NoFaults)
    }

    /// Predicted class without faults.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn predict(&mut self, image: &Tensor) -> Result<usize, GraphError> {
        Ok(self.forward(image)?.argmax())
    }

    /// Predicted class with a fault injector.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn predict_with(
        &mut self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
    ) -> Result<usize, GraphError> {
        Ok(self.forward_with(image, injector)?.argmax())
    }

    /// Runs the quantized path with fault injection, returning float
    /// logits (dequantized output of the final node).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn forward_with(
        &mut self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
    ) -> Result<Tensor, GraphError> {
        self.forward_capture(image, injector).map(|(out, _)| out)
    }

    /// Index of the final dense (readout) layer.
    fn readout_id(&self) -> usize {
        self.nodes
            .iter()
            .rposition(|n| matches!(n.op, QOp::Dense { .. }))
            .expect("quantized graph has a dense readout")
    }

    /// Dequantized *quantized-domain* features feeding the readout layer
    /// for `image` (clean execution).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn readout_features(&mut self, image: &Tensor) -> Result<Vec<f32>, GraphError> {
        let readout = self.readout_id();
        let src = self.nodes[readout].inputs[0];
        let (_, acts) = self.forward_capture(image, &mut NoFaults)?;
        Ok(acts[src].dequantize().data().to_vec())
    }

    /// Refits the readout layer on labelled images using the *quantized*
    /// backbone's features — the DECENT-style quantize-then-finetune step
    /// that keeps narrow precisions usable. The new float readout is
    /// requantized (per-output scales) and its output activation scale is
    /// recalibrated on the same images.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::BadImage`] from feature extraction.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a label is out of range.
    pub fn refit_readout(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        epochs: usize,
        learning_rate: f32,
    ) -> Result<(), GraphError> {
        assert_eq!(images.len(), labels.len(), "images/labels mismatch");
        let mut features = Vec::with_capacity(images.len());
        for img in images {
            features.push(self.readout_features(img)?);
        }
        let readout = self.readout_id();
        let in_scale = self.nodes[self.nodes[readout].inputs[0]].out_scale;
        let format = self.format;
        let QOp::Dense {
            in_len,
            out_len,
            wcodes,
            wscales,
            bias_q,
            ..
        } = &mut self.nodes[readout].op
        else {
            unreachable!("readout is dense");
        };
        let (dim, classes) = (*in_len, *out_len);
        // Dequantize the current readout into float space.
        let mut weights = vec![0.0f32; wcodes.len()];
        for o in 0..classes {
            for i in 0..dim {
                weights[o * dim + i] = f32::from(wcodes[o * dim + i]) * wscales[o];
            }
        }
        let mut bias = vec![0.0f32; classes];
        for o in 0..classes {
            bias[o] = bias_q[o] as f32 * in_scale * wscales[o];
        }
        crate::train::fit_softmax_regression(
            &features,
            labels,
            dim,
            classes,
            &mut weights,
            &mut bias,
            epochs,
            learning_rate,
        );
        // Requantize the new readout per output unit.
        for o in 0..classes {
            let row = &weights[o * dim..(o + 1) * dim];
            let wq = QuantScale::for_max_abs(
                f64::from(row.iter().fold(0.0f32, |m, &w| m.max(w.abs()))),
                format,
            );
            for (i, &w) in row.iter().enumerate() {
                wcodes[o * dim + i] = wq.quantize(f64::from(w)) as i8;
            }
            let ws = wq.scale as f32;
            wscales[o] = ws;
            bias_q[o] = (bias[o] / (in_scale * ws)).round() as i32;
        }
        // Recalibrate the readout's output activation scale on the new
        // logits (float estimate: features x new weights).
        let mut max_abs = 0.0f32;
        for f in &features {
            for o in 0..classes {
                let row = &weights[o * dim..(o + 1) * dim];
                let z = bias[o] + f.iter().zip(row).map(|(a, b)| a * b).sum::<f32>();
                max_abs = max_abs.max(z.abs());
            }
        }
        if max_abs > 0.0 {
            self.nodes[readout].out_scale = max_abs / self.format.max_value() as f32;
        }
        Ok(())
    }

    fn forward_capture(
        &mut self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
    ) -> Result<(Tensor, Vec<QTensor>), GraphError> {
        let in_shape = self.nodes[self.input].shape;
        if image.h() != in_shape.h || image.w() != in_shape.w || image.c() != in_shape.c {
            return Err(GraphError::BadImage {
                why: format!(
                    "expected {}x{}x{}, got {}x{}x{}",
                    in_shape.h,
                    in_shape.w,
                    in_shape.c,
                    image.h(),
                    image.w(),
                    image.c()
                ),
            });
        }
        let format = self.format;
        let mut acts: Vec<QTensor> = Vec::with_capacity(self.nodes.len());
        let mut final_float: Option<Tensor> = None;
        for id in 0..self.nodes.len() {
            // Split the borrow: clone light metadata, mutate weights in place.
            let (inputs, shape, out_scale, name) = {
                let n = &self.nodes[id];
                (n.inputs.clone(), n.shape, n.out_scale, n.name.clone())
            };
            let out = match &mut self.nodes[id].op {
                QOp::Input => quantize_image(image, out_scale, format),
                QOp::Conv {
                    params,
                    wcodes,
                    wscales,
                    bias_q,
                } => {
                    let reverts = apply_weight_faults(injector, &name, wcodes, format);
                    let input = &acts[inputs[0]];
                    let macs_per_out = params.k * params.k * params.in_ch;
                    let mut acc = conv2d_q(input, params, wcodes, bias_q);
                    revert_weights(wcodes, reverts);
                    for f in injector.plan_accumulator_faults(&name, acc.len(), macs_per_out) {
                        acc[f.index] ^= 1i32 << (f.bit % 31);
                    }
                    let rescales: Vec<f32> = wscales
                        .iter()
                        .map(|&ws| input.scale * ws / out_scale)
                        .collect();
                    let mut out =
                        requantize(&acc, shape, &rescales, out_scale, params.relu, format);
                    for f in injector.plan_activation_faults(&name, out.codes.len(), format.bits())
                    {
                        flip_code(&mut out.codes[f.index], f.bit, format);
                    }
                    out
                }
                QOp::Dense {
                    in_len,
                    out_len,
                    relu,
                    wcodes,
                    wscales,
                    bias_q,
                } => {
                    let reverts = apply_weight_faults(injector, &name, wcodes, format);
                    let input = &acts[inputs[0]];
                    let mut acc = dense_q(input, *in_len, *out_len, wcodes, bias_q);
                    revert_weights(wcodes, reverts);
                    for f in injector.plan_accumulator_faults(&name, acc.len(), *in_len) {
                        acc[f.index] ^= 1i32 << (f.bit % 31);
                    }
                    let rescales: Vec<f32> = wscales
                        .iter()
                        .map(|&ws| input.scale * ws / out_scale)
                        .collect();
                    let mut out = requantize(&acc, shape, &rescales, out_scale, *relu, format);
                    for f in injector.plan_activation_faults(&name, out.codes.len(), format.bits())
                    {
                        flip_code(&mut out.codes[f.index], f.bit, format);
                    }
                    out
                }
                QOp::MaxPool { k, stride } => max_pool_q(&acts[inputs[0]], *k, *stride),
                QOp::AvgPool { k, stride } => {
                    avg_pool_q(&acts[inputs[0]], *k, *stride, out_scale, format)
                }
                QOp::GlobalAvgPool => global_avg_pool_q(&acts[inputs[0]], out_scale, format),
                QOp::Add { relu } => {
                    add_q(&acts[inputs[0]], &acts[inputs[1]], out_scale, *relu, format)
                }
                QOp::Concat => concat_q(
                    &inputs.iter().map(|&i| &acts[i]).collect::<Vec<_>>(),
                    shape,
                    out_scale,
                    format,
                ),
                QOp::Softmax => {
                    let logits = acts[inputs[0]].dequantize();
                    let float = softmax_f(&logits);
                    if id == self.output {
                        final_float = Some(float.clone());
                    }
                    // Store probabilities quantized on the out scale.
                    quantize_image(&float, out_scale, format)
                }
            };
            acts.push(out);
        }
        let out = final_float.unwrap_or_else(|| acts[self.output].dequantize());
        Ok((out, acts))
    }
}

fn scale_of(nodes: &[QNode], id: usize) -> f32 {
    nodes[id].out_scale
}

fn quantize_image(image: &Tensor, scale: f32, format: IntFormat) -> QTensor {
    let mut q = QTensor::zeros(image.h(), image.w(), image.c(), scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    for (code, &v) in q.codes.iter_mut().zip(image.data()) {
        *code = (v / scale).round().clamp(lo, hi) as i8;
    }
    q
}

fn apply_weight_faults(
    injector: &mut dyn FaultInjector,
    layer: &str,
    wcodes: &mut [i8],
    format: IntFormat,
) -> Vec<(usize, i8)> {
    let flips = injector.plan_weight_faults(layer, wcodes.len(), format.bits());
    let mut reverts = Vec::with_capacity(flips.len());
    for f in flips {
        if f.index < wcodes.len() {
            reverts.push((f.index, wcodes[f.index]));
            flip_code(&mut wcodes[f.index], f.bit, format);
        }
    }
    reverts
}

fn revert_weights(wcodes: &mut [i8], reverts: Vec<(usize, i8)>) {
    for (i, orig) in reverts {
        wcodes[i] = orig;
    }
}

fn flip_code(code: &mut i8, bit: u32, format: IntFormat) {
    let b = bit % format.bits();
    let raw = format.to_raw(i32::from(*code)) ^ (1u32 << b);
    *code = format.sign_extend(raw) as i8;
}

fn conv2d_q(input: &QTensor, p: &ConvParams, wcodes: &[i8], bias_q: &[i32]) -> Vec<i32> {
    let (ih, iw, ic) = (input.h(), input.w(), input.c());
    let (oh, ow) = p.out_hw(ih, iw);
    let mut acc = vec![0i32; oh * ow * p.out_ch];
    let k2ic = p.k * p.k * ic;
    for oy in 0..oh {
        for ox in 0..ow {
            let base_y = (oy * p.stride) as isize - p.pad as isize;
            let base_x = (ox * p.stride) as isize - p.pad as isize;
            let out_off = (oy * ow + ox) * p.out_ch;
            for oc in 0..p.out_ch {
                let wbase = oc * k2ic;
                let mut sum = bias_q[oc];
                for ky in 0..p.k {
                    let y = base_y + ky as isize;
                    if y < 0 || y >= ih as isize {
                        continue;
                    }
                    for kx in 0..p.k {
                        let x = base_x + kx as isize;
                        if x < 0 || x >= iw as isize {
                            continue;
                        }
                        let in_off = ((y as usize) * iw + x as usize) * ic;
                        let w_off = wbase + (ky * p.k + kx) * ic;
                        let xs = &input.codes[in_off..in_off + ic];
                        let ws = &wcodes[w_off..w_off + ic];
                        sum += xs
                            .iter()
                            .zip(ws)
                            .map(|(&a, &b)| i32::from(a) * i32::from(b))
                            .sum::<i32>();
                    }
                }
                acc[out_off + oc] = sum;
            }
        }
    }
    acc
}

fn dense_q(
    input: &QTensor,
    in_len: usize,
    out_len: usize,
    wcodes: &[i8],
    bias_q: &[i32],
) -> Vec<i32> {
    debug_assert_eq!(input.codes.len(), in_len);
    let mut acc = vec![0i32; out_len];
    for (o, a) in acc.iter_mut().enumerate() {
        let ws = &wcodes[o * in_len..(o + 1) * in_len];
        *a = bias_q[o]
            + input
                .codes
                .iter()
                .zip(ws)
                .map(|(&x, &w)| i32::from(x) * i32::from(w))
                .sum::<i32>();
    }
    acc
}

/// Requantizes accumulators to the output scale with per-channel rescale
/// factors (HWC layout: channel = index % c).
fn requantize(
    acc: &[i32],
    shape: Shape,
    rescales: &[f32],
    out_scale: f32,
    relu: bool,
    format: IntFormat,
) -> QTensor {
    debug_assert_eq!(rescales.len(), shape.c);
    let mut out = QTensor::zeros(shape.h, shape.w, shape.c, out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    let c = shape.c;
    for (i, (code, &a)) in out.codes.iter_mut().zip(acc).enumerate() {
        let mut v = a as f32 * rescales[i % c];
        if relu && v < 0.0 {
            v = 0.0;
        }
        *code = v.round().clamp(lo, hi) as i8;
    }
    out
}

fn max_pool_q(input: &QTensor, k: usize, stride: usize) -> QTensor {
    let oh = (input.h() - k) / stride + 1;
    let ow = (input.w() - k) / stride + 1;
    let c = input.c();
    let mut out = QTensor::zeros(oh, ow, c, input.scale);
    for oy in 0..oh {
        for ox in 0..ow {
            for ch in 0..c {
                let mut m = i8::MIN;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = ((oy * stride + ky) * input.w() + ox * stride + kx) * c + ch;
                        m = m.max(input.codes[idx]);
                    }
                }
                out.codes[(oy * ow + ox) * c + ch] = m;
            }
        }
    }
    out
}

/// Average pooling with the DPU's wide internal accumulator: sums in i32
/// and requantizes to the node's calibrated output scale, so the averaged
/// values keep their resolution instead of being crushed to the input's
/// integer grid.
fn avg_pool_q(
    input: &QTensor,
    k: usize,
    stride: usize,
    out_scale: f32,
    format: IntFormat,
) -> QTensor {
    let oh = (input.h() - k) / stride + 1;
    let ow = (input.w() - k) / stride + 1;
    let c = input.c();
    let rescale = input.scale / ((k * k) as f32 * out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    let mut out = QTensor::zeros(oh, ow, c, out_scale);
    for oy in 0..oh {
        for ox in 0..ow {
            for ch in 0..c {
                let mut s = 0i32;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = ((oy * stride + ky) * input.w() + ox * stride + kx) * c + ch;
                        s += i32::from(input.codes[idx]);
                    }
                }
                out.codes[(oy * ow + ox) * c + ch] =
                    (s as f32 * rescale).round().clamp(lo, hi) as i8;
            }
        }
    }
    out
}

/// Global average pooling; see [`avg_pool_q`] for the precision model.
fn global_avg_pool_q(input: &QTensor, out_scale: f32, format: IntFormat) -> QTensor {
    let c = input.c();
    let n = (input.h() * input.w()) as f32;
    let rescale = input.scale / (n * out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    let mut out = QTensor::zeros(1, 1, c, out_scale);
    for ch in 0..c {
        let mut s = 0i32;
        for y in 0..input.h() {
            for x in 0..input.w() {
                s += i32::from(input.codes[(y * input.w() + x) * c + ch]);
            }
        }
        out.codes[ch] = (s as f32 * rescale).round().clamp(lo, hi) as i8;
    }
    out
}

fn add_q(a: &QTensor, b: &QTensor, out_scale: f32, relu: bool, format: IntFormat) -> QTensor {
    let mut out = QTensor::zeros(a.h(), a.w(), a.c(), out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    for i in 0..out.codes.len() {
        let mut v = (f32::from(a.codes[i]) * a.scale + f32::from(b.codes[i]) * b.scale) / out_scale;
        if relu && v < 0.0 {
            v = 0.0;
        }
        out.codes[i] = v.round().clamp(lo, hi) as i8;
    }
    out
}

fn concat_q(inputs: &[&QTensor], shape: Shape, out_scale: f32, format: IntFormat) -> QTensor {
    let mut out = QTensor::zeros(shape.h, shape.w, shape.c, out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    for y in 0..shape.h {
        for x in 0..shape.w {
            let mut off = 0;
            for t in inputs {
                for ch in 0..t.c() {
                    let v = f32::from(t.codes[(y * t.w() + x) * t.c() + ch]) * t.scale / out_scale;
                    out.codes[(y * shape.w + x) * shape.c + off + ch] =
                        v.round().clamp(lo, hi) as i8;
                }
                off += t.c();
            }
        }
    }
    out
}

fn softmax_f(logits: &Tensor) -> Tensor {
    let x = logits.data();
    let m = x.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = x.iter().map(|&v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::vector(exps.into_iter().map(|e| e / sum).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input(4, 4, 2);
        let p = ConvParams {
            in_ch: 2,
            out_ch: 3,
            k: 3,
            stride: 1,
            pad: 1,
            relu: true,
        };
        let w: Vec<f32> = (0..p.weight_count())
            .map(|i| ((i as f32) * 0.37).sin() * 0.5)
            .collect();
        let y = b.conv("c1", x, p, w, vec![0.05, -0.05, 0.0]);
        let m = b.max_pool("mp", y, 2, 2);
        let wfc: Vec<f32> = (0..2 * 2 * 3 * 4)
            .map(|i| ((i as f32) * 0.73).cos() * 0.4)
            .collect();
        let z = b.dense("fc", m, 4, false, wfc, vec![0.0; 4]);
        let s = b.softmax("sm", z);
        b.finish(s)
    }

    fn calib_images() -> Vec<Tensor> {
        (0..4)
            .map(|k| {
                Tensor::from_vec(
                    4,
                    4,
                    2,
                    (0..32).map(|i| ((i + k * 7) as f32 * 0.21).sin()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn int8_tracks_float_closely() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        for img in &imgs {
            let f = g.forward(img).unwrap();
            let qi = q.forward(img).unwrap();
            for (a, b) in f.data().iter().zip(qi.data()) {
                assert!((a - b).abs() < 0.08, "float {a} vs int8 {b}");
            }
            assert_eq!(f.argmax(), qi.argmax());
        }
    }

    #[test]
    fn lower_precision_increases_error() {
        let g = small_graph();
        let imgs = calib_images();
        let err_at = |bits: u32| -> f32 {
            let mut q = QuantizedGraph::quantize(&g, bits, &imgs).unwrap();
            let mut worst = 0.0f32;
            for img in &imgs {
                let f = g.forward(img).unwrap();
                let qi = q.forward(img).unwrap();
                for (a, b) in f.data().iter().zip(qi.data()) {
                    worst = worst.max((a - b).abs());
                }
            }
            worst
        };
        let e8 = err_at(8);
        let e4 = err_at(4);
        assert!(e4 > e8, "INT4 error {e4} should exceed INT8 error {e8}");
    }

    #[test]
    fn weight_faults_are_transient() {
        struct OneFlip;
        impl FaultInjector for OneFlip {
            fn plan_weight_faults(&mut self, layer: &str, _len: usize, bits: u32) -> Vec<BitFlip> {
                if layer == "c1" {
                    vec![BitFlip {
                        index: 0,
                        bit: bits - 1,
                    }]
                } else {
                    Vec::new()
                }
            }
            fn plan_accumulator_faults(&mut self, _: &str, _: usize, _: usize) -> Vec<BitFlip> {
                Vec::new()
            }
            fn plan_activation_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
        }
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let clean_before = q.forward(&imgs[0]).unwrap();
        let faulty = q.forward_with(&imgs[0], &mut OneFlip).unwrap();
        let clean_after = q.forward(&imgs[0]).unwrap();
        assert_eq!(
            clean_before.data(),
            clean_after.data(),
            "faults must not persist"
        );
        assert_ne!(clean_before.data(), faulty.data(), "fault must perturb");
    }

    #[test]
    fn accumulator_fault_in_high_bit_is_catastrophic_but_saturated() {
        struct AccFlip;
        impl FaultInjector for AccFlip {
            fn plan_weight_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
            fn plan_accumulator_faults(
                &mut self,
                layer: &str,
                _len: usize,
                _m: usize,
            ) -> Vec<BitFlip> {
                if layer == "fc" {
                    vec![BitFlip { index: 0, bit: 29 }]
                } else {
                    Vec::new()
                }
            }
            fn plan_activation_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
        }
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let out = q.forward_with(&imgs[0], &mut AccFlip).unwrap();
        // Output is still a valid probability vector (saturation contained it).
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rejects_unfolded_batch_norm() {
        let mut b = GraphBuilder::new();
        let x = b.input(1, 1, 2);
        let y = b.batch_norm(
            "bn",
            x,
            vec![1.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![1.0; 2],
        );
        let g = b.finish(y);
        let img = Tensor::vector(vec![0.1, 0.2]);
        assert!(QuantizedGraph::quantize(&g, 8, &[img]).is_err());
    }

    #[test]
    fn weight_code_count_matches_params() {
        let g = small_graph();
        let imgs = calib_images();
        let q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        // conv weights 54 + dense weights 48.
        assert_eq!(q.weight_code_count(), 54 + 48);
    }

    #[test]
    fn narrow_formats_respect_code_range() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 4, &imgs).unwrap();
        let _ = q.forward(&imgs[0]).unwrap();
        for n in &q.nodes {
            if let QOp::Conv { wcodes, .. } | QOp::Dense { wcodes, .. } = &n.op {
                for &c in wcodes {
                    assert!((-8..=7).contains(&i32::from(c)), "INT4 code {c}");
                }
            }
        }
    }

    #[test]
    fn per_channel_beats_per_tensor_at_narrow_widths() {
        // Channels with disparate weight magnitudes lose resolution under
        // a shared per-tensor scale; per-channel scales keep every
        // channel's weights representable. Measured as aggregate logit
        // error of an INT4 model vs the float reference over a batch.
        let g = {
            let mut b = GraphBuilder::new();
            let x = b.input(6, 6, 2);
            let p = ConvParams {
                in_ch: 2,
                out_ch: 6,
                k: 3,
                stride: 1,
                pad: 1,
                relu: true,
            };
            // Per-output-channel magnitude spread of ~6x.
            let w: Vec<f32> = (0..p.weight_count())
                .map(|i| {
                    let oc = i / (9 * 2);
                    let mag = 0.15 + 0.15 * oc as f32;
                    ((i as f32 * 0.37).sin()) * mag
                })
                .collect();
            let y = b.conv("c", x, p, w, vec![0.0; 6]);
            let gpool = b.global_avg_pool("gap", y);
            let wfc: Vec<f32> = (0..6 * 4)
                .map(|i| ((i as f32) * 0.73).cos() * 0.5)
                .collect();
            let d = b.dense("fc", gpool, 4, false, wfc, vec![0.0; 4]);
            b.finish(d)
        };
        let images: Vec<Tensor> = (0..12)
            .map(|k| {
                Tensor::from_vec(
                    6,
                    6,
                    2,
                    (0..72).map(|i| ((i + k * 5) as f32 * 0.21).sin()).collect(),
                )
            })
            .collect();
        let err = |granularity: Granularity| {
            QuantizedGraph::quantize_with(&g, 4, &images, granularity)
                .unwrap()
                .weight_rms_error(&g)
        };
        let per_channel = err(Granularity::PerChannel);
        let per_tensor = err(Granularity::PerTensor);
        assert!(
            per_channel < per_tensor * 0.75,
            "per-channel {per_channel} vs per-tensor {per_tensor}"
        );
    }

    #[test]
    fn residual_and_concat_quantized_paths() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 2);
        let p = ConvParams {
            in_ch: 2,
            out_ch: 2,
            k: 1,
            stride: 1,
            pad: 0,
            relu: false,
        };
        let y = b.conv("c", x, p, vec![0.8, 0.0, 0.0, 0.8], vec![0.0, 0.0]);
        let r = b.add("res", x, y, true);
        let cat = b.concat("cat", &[r, x]);
        let g = b.finish(cat);
        let img = Tensor::from_vec(2, 2, 2, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, 0.8]);
        let f = g.forward(&img).unwrap();
        let mut q = QuantizedGraph::quantize(&g, 8, std::slice::from_ref(&img)).unwrap();
        let qo = q.forward(&img).unwrap();
        for (a, b) in f.data().iter().zip(qo.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }
}

//! Post-training quantization and the integer (DPU-style) executor.
//!
//! Mirrors the DECENT quantizer of the Xilinx DNNDK toolchain (§3.1):
//! symmetric per-tensor linear quantization of weights and activations to
//! `INTk` (k = 8 baseline; the Fig. 7 study sweeps k down to 4), 32-bit
//! accumulators, and a requantization step between layers.
//!
//! The quantized executor is the *faultable* datapath: undervolting timing
//! faults manifest as transient bit flips in weight fetches, MAC
//! accumulators and activation buffers. The executor asks a
//! [`FaultInjector`] for a fault plan per layer execution and applies it
//! transiently (weights are restored afterwards — faults in the paper's
//! setup are timing errors on reads, not permanent storage corruption).

use crate::abft::{DefenseMode, DefensePolicy, DefenseStats, IntChecksum};
use crate::graph::{ConvParams, Graph, GraphError, Op, Shape};
use crate::kernels;
use crate::reference;
use crate::tensor::{QTensor, Tensor};
use redvolt_num::fixed::{IntFormat, QuantScale};

/// A planned transient bit flip: element index and bit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Index of the affected element in the target buffer.
    pub index: usize,
    /// Bit position within the element's storage.
    pub bit: u32,
}

/// Source of per-layer fault plans.
///
/// Implemented by `redvolt-faults` (rates derived from the board's timing
/// slack) and by [`NoFaults`] for clean execution.
pub trait FaultInjector {
    /// Plans transient flips in the `len` weight codes (of `bits` width)
    /// fetched for this layer execution.
    fn plan_weight_faults(&mut self, layer: &str, len: usize, bits: u32) -> Vec<BitFlip>;

    /// Plans flips in the `len` output accumulators of this layer, where
    /// each accumulator is produced by `macs_per_out` MAC operations.
    fn plan_accumulator_faults(
        &mut self,
        layer: &str,
        len: usize,
        macs_per_out: usize,
    ) -> Vec<BitFlip>;

    /// Plans flips in the `len` activation codes written by this layer.
    fn plan_activation_faults(&mut self, layer: &str, len: usize, bits: u32) -> Vec<BitFlip>;
}

/// The always-clean injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn plan_weight_faults(&mut self, _layer: &str, _len: usize, _bits: u32) -> Vec<BitFlip> {
        Vec::new()
    }

    fn plan_accumulator_faults(
        &mut self,
        _layer: &str,
        _len: usize,
        _macs_per_out: usize,
    ) -> Vec<BitFlip> {
        Vec::new()
    }

    fn plan_activation_faults(&mut self, _layer: &str, _len: usize, _bits: u32) -> Vec<BitFlip> {
        Vec::new()
    }
}

/// A quantized layer.
#[derive(Debug, Clone)]
enum QOp {
    Input,
    Conv {
        params: ConvParams,
        wcodes: Vec<i8>,
        /// Per-output-channel weight scales (DECENT-style per-channel
        /// symmetric quantization, which keeps narrow formats usable).
        wscales: Vec<f32>,
        bias_q: Vec<i32>,
        /// Precomputed requantization factors
        /// `input_scale · wscale / out_scale` — static after calibration,
        /// so the executor never materializes them per inference.
        rescales: Vec<f32>,
    },
    Dense {
        in_len: usize,
        out_len: usize,
        relu: bool,
        wcodes: Vec<i8>,
        /// Per-output-unit weight scales.
        wscales: Vec<f32>,
        bias_q: Vec<i32>,
        /// Precomputed requantization factors (see [`QOp::Conv`]).
        rescales: Vec<f32>,
    },
    MaxPool {
        k: usize,
        stride: usize,
    },
    AvgPool {
        k: usize,
        stride: usize,
    },
    GlobalAvgPool,
    Add {
        relu: bool,
    },
    Concat,
    Softmax,
}

#[derive(Debug, Clone)]
struct QNode {
    name: String,
    op: QOp,
    inputs: Vec<usize>,
    shape: Shape,
    /// Activation scale of this node's output codes.
    out_scale: f32,
}

/// Weight-scale granularity of the quantizer.
///
/// Per-channel is the production default (what DECENT-class tools use —
/// it keeps INT4..INT7 usable); per-tensor exists for the ablation bench
/// that demonstrates *why* per-channel matters on narrow formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One weight scale per output channel / output unit.
    #[default]
    PerChannel,
    /// A single weight scale per layer.
    PerTensor,
}

/// A graph quantized to `INTk`, executable on the integer datapath.
///
/// # Examples
///
/// ```
/// use redvolt_nn::graph::{ConvParams, GraphBuilder};
/// use redvolt_nn::quant::QuantizedGraph;
/// use redvolt_nn::tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new();
/// let x = b.input(4, 4, 1);
/// let p = ConvParams { in_ch: 1, out_ch: 1, k: 1, stride: 1, pad: 0, relu: false };
/// let y = b.conv("c", x, p, vec![0.5], vec![0.0]);
/// let g = b.finish(y);
///
/// let calib = [Tensor::from_vec(4, 4, 1, (0..16).map(|i| i as f32 / 16.0).collect())];
/// let mut q = QuantizedGraph::quantize(&g, 8, &calib)?;
/// let out = q.forward(&calib[0])?;
/// assert!((out.data()[0] - 0.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedGraph {
    nodes: Vec<QNode>,
    input: usize,
    output: usize,
    format: IntFormat,
    num_classes: usize,
    /// Per-inference buffers, reused across calls (see [`ExecScratch`]).
    scratch: ExecScratch,
    /// When set, conv/dense run the naive [`reference`] kernels instead of
    /// the optimized ones — the benchmark binary's baseline arm.
    use_reference: bool,
    /// ABFT defense policy. [`DefenseMode::Off`] (the default) leaves the
    /// execution path bit-identical to the undefended kernels.
    defense: DefensePolicy,
    /// ABFT event counters accumulated since the last
    /// [`QuantizedGraph::take_defense_stats`].
    defense_stats: DefenseStats,
}

/// The executor's buffer arena: activation tensors, raw accumulators and
/// kernel panels, all sized on first use and reused afterwards so a
/// warmed-up inference performs no heap allocation.
///
/// Every [`QuantizedGraph`] owns one arena for its `&mut self` entry
/// points, but arenas are also first-class: [`QuantizedGraph::predict_shared`]
/// runs a *shared* graph against any externally-owned arena, which is how
/// the two-level campaign executor gives each image-shard worker its own
/// scratch while all workers read one immutable graph.
#[derive(Debug, Clone, Default)]
pub struct ExecScratch {
    kernels: kernels::Scratch,
    acts: Vec<QTensor>,
    acc: Vec<i32>,
    /// Copy-on-fault weight staging: shared-graph execution cannot flip
    /// weight bits in place, so a faulted layer's codes are copied here,
    /// flipped, and the kernel runs on the copy.
    wbuf: Vec<i8>,
    /// Float staging buffer (softmax input, dequantized logits).
    fbuf: Vec<f32>,
    /// Float logits of the output node, valid after a forward pass.
    final_float: Vec<f32>,
    /// Shape of `final_float`.
    final_shape: Shape,
}

impl ExecScratch {
    /// An empty arena; buffers size themselves on first use.
    pub fn new() -> Self {
        ExecScratch::default()
    }

    /// Float logits of the output node, valid after a shared-graph run.
    pub fn final_logits(&self) -> &[f32] {
        &self.final_float
    }
}

impl QuantizedGraph {
    /// Quantizes `graph` to `bits` precision, calibrating activation scales
    /// on `calib_images` (at least one image required).
    ///
    /// Batch-norm layers must be folded first (see
    /// [`Graph::fold_batch_norms`]), as in the DPU toolchain.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if a calibration image has the wrong shape or
    /// the graph still contains batch-norm nodes.
    ///
    /// # Panics
    ///
    /// Panics if `calib_images` is empty or `bits` is not in `1..=8`.
    pub fn quantize(graph: &Graph, bits: u32, calib_images: &[Tensor]) -> Result<Self, GraphError> {
        QuantizedGraph::quantize_with(graph, bits, calib_images, Granularity::PerChannel)
    }

    /// Like [`QuantizedGraph::quantize`] with an explicit weight-scale
    /// granularity.
    ///
    /// # Errors
    ///
    /// See [`QuantizedGraph::quantize`].
    ///
    /// # Panics
    ///
    /// See [`QuantizedGraph::quantize`].
    pub fn quantize_with(
        graph: &Graph,
        bits: u32,
        calib_images: &[Tensor],
        granularity: Granularity,
    ) -> Result<Self, GraphError> {
        assert!(!calib_images.is_empty(), "need calibration images");
        let format = IntFormat::new(bits).expect("bits in 1..=8");

        // Per-node activation ranges from the float reference path. The
        // output buffers and kernel scratch are reused across calibration
        // images — only the first image pays for allocation.
        let mut max_abs = vec![0.0f32; graph.nodes().len()];
        let mut outs: Vec<Tensor> = Vec::new();
        let mut calib_scratch = kernels::Scratch::new();
        for img in calib_images {
            graph.forward_all_into(img, &mut outs, &mut calib_scratch)?;
            for (m, t) in max_abs.iter_mut().zip(&outs) {
                *m = m.max(t.max_abs());
            }
        }

        let max_code = format.max_value() as f32;
        let mut nodes = Vec::with_capacity(graph.nodes().len());
        for (id, node) in graph.nodes().iter().enumerate() {
            let out_scale = if max_abs[id] > 0.0 {
                max_abs[id] / max_code
            } else {
                1.0
            };
            let op = match &node.op {
                Op::Input { .. } => QOp::Input,
                Op::Conv {
                    params,
                    weights,
                    bias,
                } => {
                    let in_scale = scale_of(&nodes, node.inputs[0]);
                    let k2ic = params.k * params.k * params.in_ch;
                    let tensor_max = f64::from(weights.iter().fold(0.0f32, |m, &w| m.max(w.abs())));
                    let mut wcodes = Vec::with_capacity(weights.len());
                    let mut wscales = Vec::with_capacity(params.out_ch);
                    let mut bias_q = Vec::with_capacity(params.out_ch);
                    for oc in 0..params.out_ch {
                        let block = &weights[oc * k2ic..(oc + 1) * k2ic];
                        let max_abs = match granularity {
                            Granularity::PerChannel => {
                                f64::from(block.iter().fold(0.0f32, |m, &w| m.max(w.abs())))
                            }
                            Granularity::PerTensor => tensor_max,
                        };
                        let wq = QuantScale::for_max_abs(max_abs, format);
                        wcodes.extend(block.iter().map(|&w| wq.quantize(f64::from(w)) as i8));
                        let wscale = wq.scale as f32;
                        wscales.push(wscale);
                        bias_q.push((bias[oc] / (in_scale * wscale)).round() as i32);
                    }
                    let act_scale = runtime_scale_of(&nodes, node.inputs[0]);
                    let rescales = wscales
                        .iter()
                        .map(|&ws| act_scale * ws / out_scale)
                        .collect();
                    QOp::Conv {
                        params: *params,
                        wcodes,
                        wscales,
                        bias_q,
                        rescales,
                    }
                }
                Op::Dense {
                    in_len,
                    out_len,
                    relu,
                    weights,
                    bias,
                } => {
                    let in_scale = scale_of(&nodes, node.inputs[0]);
                    let tensor_max = f64::from(weights.iter().fold(0.0f32, |m, &w| m.max(w.abs())));
                    let mut wcodes = Vec::with_capacity(weights.len());
                    let mut wscales = Vec::with_capacity(*out_len);
                    let mut bias_q = Vec::with_capacity(*out_len);
                    for o in 0..*out_len {
                        let row = &weights[o * in_len..(o + 1) * in_len];
                        let max_abs = match granularity {
                            Granularity::PerChannel => {
                                f64::from(row.iter().fold(0.0f32, |m, &w| m.max(w.abs())))
                            }
                            Granularity::PerTensor => tensor_max,
                        };
                        let wq = QuantScale::for_max_abs(max_abs, format);
                        wcodes.extend(row.iter().map(|&w| wq.quantize(f64::from(w)) as i8));
                        let wscale = wq.scale as f32;
                        wscales.push(wscale);
                        bias_q.push((bias[o] / (in_scale * wscale)).round() as i32);
                    }
                    let act_scale = runtime_scale_of(&nodes, node.inputs[0]);
                    let rescales = wscales
                        .iter()
                        .map(|&ws| act_scale * ws / out_scale)
                        .collect();
                    QOp::Dense {
                        in_len: *in_len,
                        out_len: *out_len,
                        relu: *relu,
                        wcodes,
                        wscales,
                        bias_q,
                        rescales,
                    }
                }
                Op::MaxPool { k, stride } => QOp::MaxPool {
                    k: *k,
                    stride: *stride,
                },
                Op::AvgPool { k, stride } => QOp::AvgPool {
                    k: *k,
                    stride: *stride,
                },
                Op::GlobalAvgPool => QOp::GlobalAvgPool,
                Op::Add { relu } => QOp::Add { relu: *relu },
                Op::Concat => QOp::Concat,
                Op::Softmax => QOp::Softmax,
                Op::BatchNorm { .. } => {
                    return Err(GraphError::ShapeMismatch {
                        node: node.name.clone(),
                        why: "fold batch norms before quantization".to_string(),
                    })
                }
            };
            nodes.push(QNode {
                name: node.name.clone(),
                op,
                inputs: node.inputs.clone(),
                shape: graph.shape(id),
                out_scale,
            });
        }
        Ok(QuantizedGraph {
            nodes,
            input: graph.input_id(),
            output: graph.output_id(),
            format,
            num_classes: graph.num_classes(),
            scratch: ExecScratch::default(),
            use_reference: false,
            defense: DefensePolicy::off(),
            defense_stats: DefenseStats::default(),
        })
    }

    /// Sets the ABFT defense policy for subsequent executions.
    /// [`DefenseMode::Off`] restores the exact undefended execution path
    /// (bit-identical outputs and injector draw sequence).
    pub fn set_defense(&mut self, policy: DefensePolicy) {
        self.defense = policy;
    }

    /// The active defense policy.
    pub fn defense(&self) -> DefensePolicy {
        self.defense
    }

    /// Returns and resets the accumulated ABFT counters.
    pub fn take_defense_stats(&mut self) -> DefenseStats {
        std::mem::take(&mut self.defense_stats)
    }

    /// Accumulated ABFT counters since the last take.
    pub fn defense_stats(&self) -> DefenseStats {
        self.defense_stats
    }

    /// Switches conv/dense layers between the optimized [`kernels`] and
    /// the naive [`reference`] implementations. Output is bit-identical
    /// either way; the toggle exists so the benchmark binary can measure
    /// the end-to-end speedup on the same graph.
    pub fn set_reference_kernels(&mut self, on: bool) {
        self.use_reference = on;
    }

    /// Whether the naive reference kernels are active.
    pub fn reference_kernels(&self) -> bool {
        self.use_reference
    }

    /// Operand precision in bits.
    pub fn bits(&self) -> u32 {
        self.format.bits()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total quantized weight codes (fault-site count for weight fetches).
    pub fn weight_code_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                QOp::Conv { wcodes, .. } | QOp::Dense { wcodes, .. } => wcodes.len(),
                _ => 0,
            })
            .sum()
    }

    /// Root-mean-square error between this graph's dequantized weights
    /// and the float `reference` weights (a quantization-fidelity
    /// diagnostic; the ablation bench uses it to compare scale
    /// granularities).
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not have the same topology.
    pub fn weight_rms_error(&self, reference: &Graph) -> f64 {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for (qn, rn) in self.nodes.iter().zip(reference.nodes()) {
            match (&qn.op, &rn.op) {
                (
                    QOp::Conv {
                        params,
                        wcodes,
                        wscales,
                        ..
                    },
                    Op::Conv { weights, .. },
                ) => {
                    let k2ic = params.k * params.k * params.in_ch;
                    for (i, &w) in weights.iter().enumerate() {
                        let deq = f32::from(wcodes[i]) * wscales[i / k2ic];
                        sum += f64::from((deq - w) * (deq - w));
                    }
                    count += weights.len();
                }
                (
                    QOp::Dense {
                        in_len,
                        wcodes,
                        wscales,
                        ..
                    },
                    Op::Dense { weights, .. },
                ) => {
                    for (i, &w) in weights.iter().enumerate() {
                        let deq = f32::from(wcodes[i]) * wscales[i / in_len];
                        sum += f64::from((deq - w) * (deq - w));
                    }
                    count += weights.len();
                }
                (QOp::Input, Op::Input { .. }) => {}
                (_, Op::BatchNorm { .. }) => panic!("reference has unfolded batch norm"),
                _ => {}
            }
        }
        if count == 0 {
            0.0
        } else {
            (sum / count as f64).sqrt()
        }
    }

    /// Runs the quantized path without faults, returning float logits.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn forward(&mut self, image: &Tensor) -> Result<Tensor, GraphError> {
        self.forward_with(image, &mut NoFaults)
    }

    /// Predicted class without faults.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn predict(&mut self, image: &Tensor) -> Result<usize, GraphError> {
        self.predict_with(image, &mut NoFaults)
    }

    /// Predicted class with a fault injector.
    ///
    /// Runs entirely inside the executor's arena — after the first call,
    /// prediction allocates nothing (the inner loop of every campaign
    /// cell).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the graph output is empty.
    pub fn predict_with(
        &mut self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
    ) -> Result<usize, GraphError> {
        self.run_internal(image, injector)?;
        let logits = &self.scratch.final_float;
        assert!(!logits.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Runs the quantized path with fault injection, returning float
    /// logits (dequantized output of the final node).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn forward_with(
        &mut self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
    ) -> Result<Tensor, GraphError> {
        self.run_internal(image, injector)?;
        let s = self.scratch.final_shape;
        Ok(Tensor::from_vec(
            s.h,
            s.w,
            s.c,
            self.scratch.final_float.clone(),
        ))
    }

    /// Index of the final dense (readout) layer.
    fn readout_id(&self) -> usize {
        self.nodes
            .iter()
            .rposition(|n| matches!(n.op, QOp::Dense { .. }))
            .expect("quantized graph has a dense readout")
    }

    /// Dequantized *quantized-domain* features feeding the readout layer
    /// for `image` (clean execution).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    pub fn readout_features(&mut self, image: &Tensor) -> Result<Vec<f32>, GraphError> {
        let readout = self.readout_id();
        let src = self.nodes[readout].inputs[0];
        self.run_internal(image, &mut NoFaults)?;
        Ok(self.scratch.acts[src].dequantize().data().to_vec())
    }

    /// Refits the readout layer on labelled images using the *quantized*
    /// backbone's features — the DECENT-style quantize-then-finetune step
    /// that keeps narrow precisions usable. The new float readout is
    /// requantized (per-output scales) and its output activation scale is
    /// recalibrated on the same images.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::BadImage`] from feature extraction.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a label is out of range.
    pub fn refit_readout(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        epochs: usize,
        learning_rate: f32,
    ) -> Result<(), GraphError> {
        assert_eq!(images.len(), labels.len(), "images/labels mismatch");
        let mut features = Vec::with_capacity(images.len());
        for img in images {
            features.push(self.readout_features(img)?);
        }
        let readout = self.readout_id();
        let in_scale = self.nodes[self.nodes[readout].inputs[0]].out_scale;
        let format = self.format;
        let QOp::Dense {
            in_len,
            out_len,
            wcodes,
            wscales,
            bias_q,
            ..
        } = &mut self.nodes[readout].op
        else {
            unreachable!("readout is dense");
        };
        let (dim, classes) = (*in_len, *out_len);
        // Dequantize the current readout into float space.
        let mut weights = vec![0.0f32; wcodes.len()];
        for o in 0..classes {
            for i in 0..dim {
                weights[o * dim + i] = f32::from(wcodes[o * dim + i]) * wscales[o];
            }
        }
        let mut bias = vec![0.0f32; classes];
        for o in 0..classes {
            bias[o] = bias_q[o] as f32 * in_scale * wscales[o];
        }
        crate::train::fit_softmax_regression(
            &features,
            labels,
            dim,
            classes,
            &mut weights,
            &mut bias,
            epochs,
            learning_rate,
        );
        // Requantize the new readout per output unit.
        for o in 0..classes {
            let row = &weights[o * dim..(o + 1) * dim];
            let wq = QuantScale::for_max_abs(
                f64::from(row.iter().fold(0.0f32, |m, &w| m.max(w.abs()))),
                format,
            );
            for (i, &w) in row.iter().enumerate() {
                wcodes[o * dim + i] = wq.quantize(f64::from(w)) as i8;
            }
            let ws = wq.scale as f32;
            wscales[o] = ws;
            bias_q[o] = (bias[o] / (in_scale * ws)).round() as i32;
        }
        // Recalibrate the readout's output activation scale on the new
        // logits (float estimate: features x new weights).
        let mut max_abs = 0.0f32;
        for f in &features {
            for o in 0..classes {
                let row = &weights[o * dim..(o + 1) * dim];
                let z = bias[o] + f.iter().zip(row).map(|(a, b)| a * b).sum::<f32>();
                max_abs = max_abs.max(z.abs());
            }
        }
        if max_abs > 0.0 {
            self.nodes[readout].out_scale = max_abs / self.format.max_value() as f32;
        }
        // The readout's precomputed requantization factors depend on its
        // weight scales and output scale, both just rewritten — refresh.
        let act_scale = runtime_scale_of(&self.nodes, self.nodes[readout].inputs[0]);
        let out_scale = self.nodes[readout].out_scale;
        let QOp::Dense {
            wscales, rescales, ..
        } = &mut self.nodes[readout].op
        else {
            unreachable!("readout is dense");
        };
        for (r, &ws) in rescales.iter_mut().zip(wscales.iter()) {
            *r = act_scale * ws / out_scale;
        }
        Ok(())
    }

    /// Predicted class with a fault injector, against an external arena.
    ///
    /// Unlike [`QuantizedGraph::predict_with`] this takes `&self`: the
    /// graph is never mutated (transient weight faults run on a
    /// copy-on-fault staging buffer inside `scratch`), so one prepared
    /// graph can serve many image-shard workers concurrently, each with
    /// its own [`ExecScratch`] and [`DefenseStats`] accumulator. Bit-for-
    /// bit identical to `predict_with` for the same injector state.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadImage`] on input-shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the graph output is empty.
    pub fn predict_shared(
        &self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
        scratch: &mut ExecScratch,
        stats: &mut DefenseStats,
    ) -> Result<usize, GraphError> {
        self.run_shared(image, injector, scratch, stats)?;
        let logits = &scratch.final_float;
        assert!(!logits.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Executes the graph into the owned scratch arena — the `&mut self`
    /// entry point behind [`QuantizedGraph::predict_with`] /
    /// [`QuantizedGraph::forward_with`]. Delegates to
    /// [`QuantizedGraph::run_shared`] with the graph's own arena and
    /// defense-stat accumulator.
    fn run_internal(
        &mut self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
    ) -> Result<(), GraphError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut stats = std::mem::take(&mut self.defense_stats);
        let result = self.run_shared(image, injector, &mut scratch, &mut stats);
        self.scratch = scratch;
        self.defense_stats = stats;
        result
    }

    /// Executes the graph into `scratch`: `scratch.acts[id]` holds every
    /// node's activation and `scratch.final_float` the output node's
    /// float logits. No allocation once the arena is warm, and no graph
    /// mutation ever — weight faults stage through `scratch.wbuf`.
    fn run_shared(
        &self,
        image: &Tensor,
        injector: &mut dyn FaultInjector,
        scratch: &mut ExecScratch,
        stats: &mut DefenseStats,
    ) -> Result<(), GraphError> {
        let in_shape = self.nodes[self.input].shape;
        if image.h() != in_shape.h || image.w() != in_shape.w || image.c() != in_shape.c {
            return Err(GraphError::BadImage {
                why: format!(
                    "expected {}x{}x{}, got {}x{}x{}",
                    in_shape.h,
                    in_shape.w,
                    in_shape.c,
                    image.h(),
                    image.w(),
                    image.c()
                ),
            });
        }
        let format = self.format;
        let output_id = self.output;
        let use_reference = self.use_reference;
        let defense = self.defense;
        let nodes = &self.nodes;
        let ExecScratch {
            kernels: ks,
            acts,
            acc,
            wbuf,
            fbuf,
            final_float,
            final_shape,
        } = scratch;
        acts.resize_with(nodes.len(), || QTensor::zeros(0, 0, 0, 1.0));
        let mut softmax_output = false;
        // An index loop, not an iterator: `id` is also the split point of
        // the activation list (`split_at_mut` below), which an enumerated
        // mutable borrow of `nodes` could not express.
        #[allow(clippy::needless_range_loop)]
        for id in 0..nodes.len() {
            // The graph is read-only here — transient weight faults stage
            // through `wbuf` — and the activation list splits at `id`;
            // inputs always precede.
            let node = &nodes[id];
            let name = node.name.as_str();
            let inputs = &node.inputs;
            let shape = node.shape;
            let out_scale = node.out_scale;
            let (before, rest) = acts.split_at_mut(id);
            let out = &mut rest[0];
            match &node.op {
                QOp::Input => quantize_image_into(image, out_scale, format, out),
                QOp::Conv {
                    params,
                    wcodes,
                    bias_q,
                    rescales,
                    ..
                } => {
                    let input = &before[inputs[0]];
                    let macs_per_out = params.k * params.k * params.in_ch;
                    let (oh, ow) = params.out_hw(input.h(), input.w());
                    // Accumulator stage: compute + checksum-verify, with a
                    // bounded re-execution loop under `Correct`. An `Off`
                    // policy breaks after one pass having done no checksum
                    // work and exactly the undefended injector draws.
                    let mut attempt = 0u32;
                    loop {
                        let (weights, weight_faulted) =
                            faulted_weights(injector, name, wcodes, format, wbuf);
                        acc.clear();
                        if use_reference {
                            acc.extend(reference::conv2d_q(input, params, weights, bias_q));
                        } else {
                            acc.resize(oh * ow * params.out_ch, 0);
                            kernels::conv2d_q_into(input, params, weights, bias_q, ks, acc);
                        }
                        let clean = if defense.is_on() {
                            IntChecksum::of_acc(acc)
                        } else {
                            IntChecksum::default()
                        };
                        for f in injector.plan_accumulator_faults(name, acc.len(), macs_per_out) {
                            acc[f.index] ^= 1i32 << (f.bit % 31);
                        }
                        if !defense.is_on() {
                            break;
                        }
                        stats.checks += 1;
                        if !weight_faulted && IntChecksum::of_acc(acc) == clean {
                            break;
                        }
                        stats.mismatches += 1;
                        if attempt >= defense.reexec_budget() {
                            if defense.mode == DefenseMode::Correct {
                                stats.unresolved += 1;
                            }
                            break;
                        }
                        attempt += 1;
                        stats.reexecutions += 1;
                    }
                    // Activation stage: requantize + checksum-verify the
                    // quantized output codes against activation flips.
                    let mut attempt = 0u32;
                    loop {
                        requantize_into(acc, shape, rescales, out_scale, params.relu, format, out);
                        let clean = if defense.is_on() {
                            IntChecksum::of_codes(&out.codes)
                        } else {
                            IntChecksum::default()
                        };
                        for f in
                            injector.plan_activation_faults(name, out.codes.len(), format.bits())
                        {
                            flip_code(&mut out.codes[f.index], f.bit, format);
                        }
                        if !defense.is_on() {
                            break;
                        }
                        stats.checks += 1;
                        if IntChecksum::of_codes(&out.codes) == clean {
                            break;
                        }
                        stats.mismatches += 1;
                        if attempt >= defense.reexec_budget() {
                            if defense.mode == DefenseMode::Correct {
                                stats.unresolved += 1;
                            }
                            break;
                        }
                        attempt += 1;
                        stats.reexecutions += 1;
                    }
                }
                QOp::Dense {
                    in_len,
                    out_len,
                    relu,
                    wcodes,
                    bias_q,
                    rescales,
                    ..
                } => {
                    let input = &before[inputs[0]];
                    let mut attempt = 0u32;
                    loop {
                        let (weights, weight_faulted) =
                            faulted_weights(injector, name, wcodes, format, wbuf);
                        acc.clear();
                        if use_reference {
                            acc.extend(reference::dense_q(
                                input, *in_len, *out_len, weights, bias_q,
                            ));
                        } else {
                            acc.resize(*out_len, 0);
                            kernels::dense_q_into(input, *in_len, *out_len, weights, bias_q, acc);
                        }
                        let clean = if defense.is_on() {
                            IntChecksum::of_acc(acc)
                        } else {
                            IntChecksum::default()
                        };
                        for f in injector.plan_accumulator_faults(name, acc.len(), *in_len) {
                            acc[f.index] ^= 1i32 << (f.bit % 31);
                        }
                        if !defense.is_on() {
                            break;
                        }
                        stats.checks += 1;
                        if !weight_faulted && IntChecksum::of_acc(acc) == clean {
                            break;
                        }
                        stats.mismatches += 1;
                        if attempt >= defense.reexec_budget() {
                            if defense.mode == DefenseMode::Correct {
                                stats.unresolved += 1;
                            }
                            break;
                        }
                        attempt += 1;
                        stats.reexecutions += 1;
                    }
                    let mut attempt = 0u32;
                    loop {
                        requantize_into(acc, shape, rescales, out_scale, *relu, format, out);
                        let clean = if defense.is_on() {
                            IntChecksum::of_codes(&out.codes)
                        } else {
                            IntChecksum::default()
                        };
                        for f in
                            injector.plan_activation_faults(name, out.codes.len(), format.bits())
                        {
                            flip_code(&mut out.codes[f.index], f.bit, format);
                        }
                        if !defense.is_on() {
                            break;
                        }
                        stats.checks += 1;
                        if IntChecksum::of_codes(&out.codes) == clean {
                            break;
                        }
                        stats.mismatches += 1;
                        if attempt >= defense.reexec_budget() {
                            if defense.mode == DefenseMode::Correct {
                                stats.unresolved += 1;
                            }
                            break;
                        }
                        attempt += 1;
                        stats.reexecutions += 1;
                    }
                }
                QOp::MaxPool { k, stride } => max_pool_q_into(&before[inputs[0]], *k, *stride, out),
                QOp::AvgPool { k, stride } => {
                    avg_pool_q_into(&before[inputs[0]], *k, *stride, out_scale, format, out)
                }
                QOp::GlobalAvgPool => {
                    global_avg_pool_q_into(&before[inputs[0]], out_scale, format, out)
                }
                QOp::Add { relu } => add_q_into(
                    &before[inputs[0]],
                    &before[inputs[1]],
                    out_scale,
                    *relu,
                    format,
                    out,
                ),
                QOp::Concat => concat_q_into(inputs, before, shape, out_scale, format, out),
                QOp::Softmax => {
                    // Dequantize the logits into the float staging buffer
                    // and apply a numerically-stable softmax in place.
                    let input = &before[inputs[0]];
                    fbuf.clear();
                    fbuf.extend(input.codes.iter().map(|&q| f32::from(q) * input.scale));
                    let m = fbuf.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                    for v in fbuf.iter_mut() {
                        *v = (*v - m).exp();
                    }
                    let sum: f32 = fbuf.iter().sum();
                    for v in fbuf.iter_mut() {
                        *v /= sum;
                    }
                    if id == output_id {
                        softmax_output = true;
                        final_float.clear();
                        final_float.extend(fbuf.iter());
                        *final_shape = Shape {
                            h: 1,
                            w: 1,
                            c: final_float.len(),
                        };
                    }
                    // Store probabilities quantized on the out scale.
                    out.reset(1, 1, fbuf.len(), out_scale);
                    let hi = format.max_value() as f32;
                    let lo = format.min_value() as f32;
                    for (code, &v) in out.codes.iter_mut().zip(fbuf.iter()) {
                        *code = (v / out_scale).round().clamp(lo, hi) as i8;
                    }
                }
            }
        }
        if !softmax_output {
            let out = &acts[output_id];
            final_float.clear();
            final_float.extend(out.codes.iter().map(|&q| f32::from(q) * out.scale));
            *final_shape = Shape {
                h: out.h(),
                w: out.w(),
                c: out.c(),
            };
        }
        Ok(())
    }
}

fn scale_of(nodes: &[QNode], id: usize) -> f32 {
    nodes[id].out_scale
}

/// Scale of the activation tensor node `id` produces at *runtime*. Equal
/// to the node's calibrated `out_scale` everywhere except max-pool, which
/// forwards its input's codes (and therefore its input's scale) verbatim.
fn runtime_scale_of(nodes: &[QNode], mut id: usize) -> f32 {
    loop {
        match &nodes[id].op {
            QOp::MaxPool { .. } => id = nodes[id].inputs[0],
            _ => return nodes[id].out_scale,
        }
    }
}

fn quantize_image_into(image: &Tensor, scale: f32, format: IntFormat, out: &mut QTensor) {
    out.reset(image.h(), image.w(), image.c(), scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    for (code, &v) in out.codes.iter_mut().zip(image.data()) {
        *code = (v / scale).round().clamp(lo, hi) as i8;
    }
}

/// Stages transient weight faults for one kernel pass without touching
/// the graph: when the injector plans at least one in-range flip, the
/// layer's codes are copied into `wbuf`, flipped there, and the staged
/// copy is returned; a clean pass returns the original slice untouched.
/// The bool mirrors the old in-place path's "weight was faulted" signal
/// consumed by the ABFT checksum stage.
fn faulted_weights<'a>(
    injector: &mut dyn FaultInjector,
    layer: &str,
    wcodes: &'a [i8],
    format: IntFormat,
    wbuf: &'a mut Vec<i8>,
) -> (&'a [i8], bool) {
    let flips = injector.plan_weight_faults(layer, wcodes.len(), format.bits());
    let mut faulted = false;
    for f in flips {
        if f.index < wcodes.len() {
            if !faulted {
                wbuf.clear();
                wbuf.extend_from_slice(wcodes);
                faulted = true;
            }
            flip_code(&mut wbuf[f.index], f.bit, format);
        }
    }
    if faulted {
        (wbuf.as_slice(), true)
    } else {
        (wcodes, false)
    }
}

fn flip_code(code: &mut i8, bit: u32, format: IntFormat) {
    let b = bit % format.bits();
    let raw = format.to_raw(i32::from(*code)) ^ (1u32 << b);
    *code = format.sign_extend(raw) as i8;
}

/// Requantizes accumulators to the output scale with per-channel rescale
/// factors (HWC layout: channel = index % c).
#[allow(clippy::too_many_arguments)]
fn requantize_into(
    acc: &[i32],
    shape: Shape,
    rescales: &[f32],
    out_scale: f32,
    relu: bool,
    format: IntFormat,
    out: &mut QTensor,
) {
    debug_assert_eq!(rescales.len(), shape.c);
    out.reset(shape.h, shape.w, shape.c, out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    let c = shape.c;
    for (i, (code, &a)) in out.codes.iter_mut().zip(acc).enumerate() {
        let mut v = a as f32 * rescales[i % c];
        if relu && v < 0.0 {
            v = 0.0;
        }
        *code = v.round().clamp(lo, hi) as i8;
    }
}

fn max_pool_q_into(input: &QTensor, k: usize, stride: usize, out: &mut QTensor) {
    let oh = (input.h() - k) / stride + 1;
    let ow = (input.w() - k) / stride + 1;
    let c = input.c();
    out.reset(oh, ow, c, input.scale);
    for oy in 0..oh {
        for ox in 0..ow {
            for ch in 0..c {
                let mut m = i8::MIN;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = ((oy * stride + ky) * input.w() + ox * stride + kx) * c + ch;
                        m = m.max(input.codes[idx]);
                    }
                }
                out.codes[(oy * ow + ox) * c + ch] = m;
            }
        }
    }
}

/// Average pooling with the DPU's wide internal accumulator: sums in i32
/// and requantizes to the node's calibrated output scale, so the averaged
/// values keep their resolution instead of being crushed to the input's
/// integer grid.
fn avg_pool_q_into(
    input: &QTensor,
    k: usize,
    stride: usize,
    out_scale: f32,
    format: IntFormat,
    out: &mut QTensor,
) {
    let oh = (input.h() - k) / stride + 1;
    let ow = (input.w() - k) / stride + 1;
    let c = input.c();
    let rescale = input.scale / ((k * k) as f32 * out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    out.reset(oh, ow, c, out_scale);
    for oy in 0..oh {
        for ox in 0..ow {
            for ch in 0..c {
                let mut s = 0i32;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = ((oy * stride + ky) * input.w() + ox * stride + kx) * c + ch;
                        s += i32::from(input.codes[idx]);
                    }
                }
                out.codes[(oy * ow + ox) * c + ch] =
                    (s as f32 * rescale).round().clamp(lo, hi) as i8;
            }
        }
    }
}

/// Global average pooling; see [`avg_pool_q_into`] for the precision model.
fn global_avg_pool_q_into(input: &QTensor, out_scale: f32, format: IntFormat, out: &mut QTensor) {
    let c = input.c();
    let n = (input.h() * input.w()) as f32;
    let rescale = input.scale / (n * out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    out.reset(1, 1, c, out_scale);
    for ch in 0..c {
        let mut s = 0i32;
        for y in 0..input.h() {
            for x in 0..input.w() {
                s += i32::from(input.codes[(y * input.w() + x) * c + ch]);
            }
        }
        out.codes[ch] = (s as f32 * rescale).round().clamp(lo, hi) as i8;
    }
}

fn add_q_into(
    a: &QTensor,
    b: &QTensor,
    out_scale: f32,
    relu: bool,
    format: IntFormat,
    out: &mut QTensor,
) {
    out.reset(a.h(), a.w(), a.c(), out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    for i in 0..out.codes.len() {
        let mut v = (f32::from(a.codes[i]) * a.scale + f32::from(b.codes[i]) * b.scale) / out_scale;
        if relu && v < 0.0 {
            v = 0.0;
        }
        out.codes[i] = v.round().clamp(lo, hi) as i8;
    }
}

fn concat_q_into(
    input_ids: &[usize],
    acts: &[QTensor],
    shape: Shape,
    out_scale: f32,
    format: IntFormat,
    out: &mut QTensor,
) {
    out.reset(shape.h, shape.w, shape.c, out_scale);
    let hi = format.max_value() as f32;
    let lo = format.min_value() as f32;
    for y in 0..shape.h {
        for x in 0..shape.w {
            let mut off = 0;
            for &ti in input_ids {
                let t = &acts[ti];
                for ch in 0..t.c() {
                    let v = f32::from(t.codes[(y * t.w() + x) * t.c() + ch]) * t.scale / out_scale;
                    out.codes[(y * shape.w + x) * shape.c + off + ch] =
                        v.round().clamp(lo, hi) as i8;
                }
                off += t.c();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abft::DEFAULT_MAX_REEXECUTIONS;
    use crate::graph::GraphBuilder;

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input(4, 4, 2);
        let p = ConvParams {
            in_ch: 2,
            out_ch: 3,
            k: 3,
            stride: 1,
            pad: 1,
            relu: true,
        };
        let w: Vec<f32> = (0..p.weight_count())
            .map(|i| ((i as f32) * 0.37).sin() * 0.5)
            .collect();
        let y = b.conv("c1", x, p, w, vec![0.05, -0.05, 0.0]);
        let m = b.max_pool("mp", y, 2, 2);
        let wfc: Vec<f32> = (0..2 * 2 * 3 * 4)
            .map(|i| ((i as f32) * 0.73).cos() * 0.4)
            .collect();
        let z = b.dense("fc", m, 4, false, wfc, vec![0.0; 4]);
        let s = b.softmax("sm", z);
        b.finish(s)
    }

    fn calib_images() -> Vec<Tensor> {
        (0..4)
            .map(|k| {
                Tensor::from_vec(
                    4,
                    4,
                    2,
                    (0..32).map(|i| ((i + k * 7) as f32 * 0.21).sin()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn int8_tracks_float_closely() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        for img in &imgs {
            let f = g.forward(img).unwrap();
            let qi = q.forward(img).unwrap();
            for (a, b) in f.data().iter().zip(qi.data()) {
                assert!((a - b).abs() < 0.08, "float {a} vs int8 {b}");
            }
            assert_eq!(f.argmax(), qi.argmax());
        }
    }

    #[test]
    fn lower_precision_increases_error() {
        let g = small_graph();
        let imgs = calib_images();
        let err_at = |bits: u32| -> f32 {
            let mut q = QuantizedGraph::quantize(&g, bits, &imgs).unwrap();
            let mut worst = 0.0f32;
            for img in &imgs {
                let f = g.forward(img).unwrap();
                let qi = q.forward(img).unwrap();
                for (a, b) in f.data().iter().zip(qi.data()) {
                    worst = worst.max((a - b).abs());
                }
            }
            worst
        };
        let e8 = err_at(8);
        let e4 = err_at(4);
        assert!(e4 > e8, "INT4 error {e4} should exceed INT8 error {e8}");
    }

    #[test]
    fn weight_faults_are_transient() {
        struct OneFlip;
        impl FaultInjector for OneFlip {
            fn plan_weight_faults(&mut self, layer: &str, _len: usize, bits: u32) -> Vec<BitFlip> {
                if layer == "c1" {
                    vec![BitFlip {
                        index: 0,
                        bit: bits - 1,
                    }]
                } else {
                    Vec::new()
                }
            }
            fn plan_accumulator_faults(&mut self, _: &str, _: usize, _: usize) -> Vec<BitFlip> {
                Vec::new()
            }
            fn plan_activation_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
        }
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let clean_before = q.forward(&imgs[0]).unwrap();
        let faulty = q.forward_with(&imgs[0], &mut OneFlip).unwrap();
        let clean_after = q.forward(&imgs[0]).unwrap();
        assert_eq!(
            clean_before.data(),
            clean_after.data(),
            "faults must not persist"
        );
        assert_ne!(clean_before.data(), faulty.data(), "fault must perturb");
    }

    #[test]
    fn accumulator_fault_in_high_bit_is_catastrophic_but_saturated() {
        struct AccFlip;
        impl FaultInjector for AccFlip {
            fn plan_weight_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
            fn plan_accumulator_faults(
                &mut self,
                layer: &str,
                _len: usize,
                _m: usize,
            ) -> Vec<BitFlip> {
                if layer == "fc" {
                    vec![BitFlip { index: 0, bit: 29 }]
                } else {
                    Vec::new()
                }
            }
            fn plan_activation_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
        }
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let out = q.forward_with(&imgs[0], &mut AccFlip).unwrap();
        // Output is still a valid probability vector (saturation contained it).
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rejects_unfolded_batch_norm() {
        let mut b = GraphBuilder::new();
        let x = b.input(1, 1, 2);
        let y = b.batch_norm(
            "bn",
            x,
            vec![1.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![1.0; 2],
        );
        let g = b.finish(y);
        let img = Tensor::vector(vec![0.1, 0.2]);
        assert!(QuantizedGraph::quantize(&g, 8, &[img]).is_err());
    }

    #[test]
    fn weight_code_count_matches_params() {
        let g = small_graph();
        let imgs = calib_images();
        let q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        // conv weights 54 + dense weights 48.
        assert_eq!(q.weight_code_count(), 54 + 48);
    }

    #[test]
    fn narrow_formats_respect_code_range() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 4, &imgs).unwrap();
        let _ = q.forward(&imgs[0]).unwrap();
        for n in &q.nodes {
            if let QOp::Conv { wcodes, .. } | QOp::Dense { wcodes, .. } = &n.op {
                for &c in wcodes {
                    assert!((-8..=7).contains(&i32::from(c)), "INT4 code {c}");
                }
            }
        }
    }

    #[test]
    fn per_channel_beats_per_tensor_at_narrow_widths() {
        // Channels with disparate weight magnitudes lose resolution under
        // a shared per-tensor scale; per-channel scales keep every
        // channel's weights representable. Measured as aggregate logit
        // error of an INT4 model vs the float reference over a batch.
        let g = {
            let mut b = GraphBuilder::new();
            let x = b.input(6, 6, 2);
            let p = ConvParams {
                in_ch: 2,
                out_ch: 6,
                k: 3,
                stride: 1,
                pad: 1,
                relu: true,
            };
            // Per-output-channel magnitude spread of ~6x.
            let w: Vec<f32> = (0..p.weight_count())
                .map(|i| {
                    let oc = i / (9 * 2);
                    let mag = 0.15 + 0.15 * oc as f32;
                    ((i as f32 * 0.37).sin()) * mag
                })
                .collect();
            let y = b.conv("c", x, p, w, vec![0.0; 6]);
            let gpool = b.global_avg_pool("gap", y);
            let wfc: Vec<f32> = (0..6 * 4)
                .map(|i| ((i as f32) * 0.73).cos() * 0.5)
                .collect();
            let d = b.dense("fc", gpool, 4, false, wfc, vec![0.0; 4]);
            b.finish(d)
        };
        let images: Vec<Tensor> = (0..12)
            .map(|k| {
                Tensor::from_vec(
                    6,
                    6,
                    2,
                    (0..72).map(|i| ((i + k * 5) as f32 * 0.21).sin()).collect(),
                )
            })
            .collect();
        let err = |granularity: Granularity| {
            QuantizedGraph::quantize_with(&g, 4, &images, granularity)
                .unwrap()
                .weight_rms_error(&g)
        };
        let per_channel = err(Granularity::PerChannel);
        let per_tensor = err(Granularity::PerTensor);
        assert!(
            per_channel < per_tensor * 0.75,
            "per-channel {per_channel} vs per-tensor {per_tensor}"
        );
    }

    #[test]
    fn residual_and_concat_quantized_paths() {
        let mut b = GraphBuilder::new();
        let x = b.input(2, 2, 2);
        let p = ConvParams {
            in_ch: 2,
            out_ch: 2,
            k: 1,
            stride: 1,
            pad: 0,
            relu: false,
        };
        let y = b.conv("c", x, p, vec![0.8, 0.0, 0.0, 0.8], vec![0.0, 0.0]);
        let r = b.add("res", x, y, true);
        let cat = b.concat("cat", &[r, x]);
        let g = b.finish(cat);
        let img = Tensor::from_vec(2, 2, 2, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, 0.8]);
        let f = g.forward(&img).unwrap();
        let mut q = QuantizedGraph::quantize(&g, 8, std::slice::from_ref(&img)).unwrap();
        let qo = q.forward(&img).unwrap();
        for (a, b) in f.data().iter().zip(qo.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    /// Faults accumulators of layer `c1` for the first `n` acc plans, then
    /// goes quiet — a transient upset that a re-execution outruns.
    struct TransientAccFault {
        remaining: u32,
    }

    impl FaultInjector for TransientAccFault {
        fn plan_weight_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
            Vec::new()
        }
        fn plan_accumulator_faults(&mut self, layer: &str, _: usize, _: usize) -> Vec<BitFlip> {
            if layer == "c1" && self.remaining > 0 {
                self.remaining -= 1;
                vec![BitFlip { index: 1, bit: 20 }]
            } else {
                Vec::new()
            }
        }
        fn plan_activation_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
            Vec::new()
        }
    }

    #[test]
    fn defense_off_runs_no_checks_and_keeps_faulty_output() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let faulty = q
            .forward_with(&imgs[0], &mut TransientAccFault { remaining: 1 })
            .unwrap();
        assert_eq!(q.take_defense_stats(), DefenseStats::default());
        // Round-tripping the policy through on-and-back-off leaves the
        // undefended path bit-identical.
        q.set_defense(DefensePolicy::correct());
        q.set_defense(DefensePolicy::off());
        let again = q
            .forward_with(&imgs[0], &mut TransientAccFault { remaining: 1 })
            .unwrap();
        assert_eq!(faulty.data(), again.data());
    }

    #[test]
    fn defense_detect_counts_mismatch_without_altering_output() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let faulty_off = q
            .forward_with(&imgs[0], &mut TransientAccFault { remaining: 1 })
            .unwrap();
        q.set_defense(DefensePolicy::detect());
        let faulty_detect = q
            .forward_with(&imgs[0], &mut TransientAccFault { remaining: 1 })
            .unwrap();
        let stats = q.take_defense_stats();
        assert_eq!(faulty_detect.data(), faulty_off.data());
        assert!(stats.checks > 0);
        assert_eq!(stats.mismatches, 1);
        assert_eq!(stats.reexecutions, 0);
        assert_eq!(stats.unresolved, 0, "detect mode never resolves");
    }

    #[test]
    fn defense_correct_reexecutes_transient_fault_to_clean_output() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let clean = q.forward(&imgs[0]).unwrap();
        q.set_defense(DefensePolicy::correct());
        let defended = q
            .forward_with(&imgs[0], &mut TransientAccFault { remaining: 1 })
            .unwrap();
        let stats = q.take_defense_stats();
        assert_eq!(defended.data(), clean.data(), "re-execution must rescue");
        assert_eq!(stats.mismatches, 1);
        assert_eq!(stats.reexecutions, 1);
        assert!(stats.clean());
    }

    #[test]
    fn defense_correct_reports_unresolved_after_budget() {
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        q.set_defense(DefensePolicy::correct());
        // More consecutive upsets than the retry budget allows.
        q.forward_with(&imgs[0], &mut TransientAccFault { remaining: 100 })
            .unwrap();
        let stats = q.take_defense_stats();
        assert_eq!(stats.reexecutions, u64::from(DEFAULT_MAX_REEXECUTIONS));
        assert_eq!(stats.unresolved, 1);
        assert!(!stats.clean());
    }

    #[test]
    fn defense_correct_rescues_activation_flips_too() {
        struct OneActFlip {
            remaining: u32,
        }
        impl FaultInjector for OneActFlip {
            fn plan_weight_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
            fn plan_accumulator_faults(&mut self, _: &str, _: usize, _: usize) -> Vec<BitFlip> {
                Vec::new()
            }
            fn plan_activation_faults(&mut self, layer: &str, _: usize, bits: u32) -> Vec<BitFlip> {
                if layer == "c1" && self.remaining > 0 {
                    self.remaining -= 1;
                    vec![BitFlip {
                        index: 3,
                        bit: bits - 1,
                    }]
                } else {
                    Vec::new()
                }
            }
        }
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        let clean = q.forward(&imgs[0]).unwrap();
        q.set_defense(DefensePolicy::correct());
        let defended = q
            .forward_with(&imgs[0], &mut OneActFlip { remaining: 1 })
            .unwrap();
        let stats = q.take_defense_stats();
        assert_eq!(defended.data(), clean.data());
        assert_eq!(stats.mismatches, 1);
        assert_eq!(stats.reexecutions, 1);
    }

    #[test]
    fn defense_correct_flags_persistent_weight_faults() {
        struct StuckWeight;
        impl FaultInjector for StuckWeight {
            fn plan_weight_faults(&mut self, layer: &str, _: usize, bits: u32) -> Vec<BitFlip> {
                if layer == "c1" {
                    vec![BitFlip {
                        index: 0,
                        bit: bits - 1,
                    }]
                } else {
                    Vec::new()
                }
            }
            fn plan_accumulator_faults(&mut self, _: &str, _: usize, _: usize) -> Vec<BitFlip> {
                Vec::new()
            }
            fn plan_activation_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
                Vec::new()
            }
        }
        let g = small_graph();
        let imgs = calib_images();
        let mut q = QuantizedGraph::quantize(&g, 8, &imgs).unwrap();
        q.set_defense(DefensePolicy::correct());
        q.forward_with(&imgs[0], &mut StuckWeight).unwrap();
        let stats = q.take_defense_stats();
        // The weight-checksum column flags every attempt; the budget runs
        // out and the corruption is reported, not silently returned.
        assert_eq!(stats.unresolved, 1);
    }
}

//! The naive reference kernels.
//!
//! These are the original triple-loop implementations the float and
//! quantized executors shipped with before the im2col + blocked-GEMM
//! rework in [`crate::kernels`]. They are kept — unchanged — as the
//! *semantic ground truth*: the differential test suite
//! (`crates/nn/tests/kernels.rs`) asserts the optimized kernels are
//! bit-identical to these across randomized shapes, and the benchmark
//! binary (`redvolt-bench --bin kernels`) measures the speedup against
//! them.
//!
//! Bit-identity is a strong contract for the float kernels: `f32`
//! addition is not associative, so the optimized implementations must
//! reproduce this module's exact accumulation order (per `(ky, kx)` row:
//! a partial sum folded from `0.0` over the channel chunk, then added to
//! the bias-initialized accumulator, skipping out-of-bounds rows). The
//! integer kernels accumulate in `i32`, which *is* associative, so the
//! optimized variants are free to reorder and block those sums.

use crate::graph::ConvParams;
use crate::tensor::{QTensor, Tensor};

/// Naive direct convolution, float path.
pub fn conv2d_f32(input: &Tensor, p: &ConvParams, weights: &[f32], bias: &[f32]) -> Tensor {
    let (oh, ow) = p.out_hw(input.h(), input.w());
    let mut out = Tensor::zeros(oh, ow, p.out_ch);
    let (ih, iw, ic) = (input.h(), input.w(), input.c());
    let data = input.data();
    let k2ic = p.k * p.k * ic;
    for oy in 0..oh {
        for ox in 0..ow {
            let base_y = (oy * p.stride) as isize - p.pad as isize;
            let base_x = (ox * p.stride) as isize - p.pad as isize;
            #[allow(clippy::needless_range_loop)] // oc also strides the weight base
            for oc in 0..p.out_ch {
                let wbase = oc * k2ic;
                let mut acc = bias[oc];
                for ky in 0..p.k {
                    let y = base_y + ky as isize;
                    if y < 0 || y >= ih as isize {
                        continue;
                    }
                    for kx in 0..p.k {
                        let x = base_x + kx as isize;
                        if x < 0 || x >= iw as isize {
                            continue;
                        }
                        let in_off = ((y as usize) * iw + x as usize) * ic;
                        let w_off = wbase + (ky * p.k + kx) * ic;
                        let xs = &data[in_off..in_off + ic];
                        let ws = &weights[w_off..w_off + ic];
                        acc += xs.iter().zip(ws).map(|(a, b)| a * b).sum::<f32>();
                    }
                }
                out.set(oy, ox, oc, if p.relu { acc.max(0.0) } else { acc });
            }
        }
    }
    out
}

/// Naive dense layer, float path.
pub fn dense_f32(
    input: &Tensor,
    out_len: usize,
    relu: bool,
    weights: &[f32],
    bias: &[f32],
) -> Tensor {
    let x = input.data();
    let n = x.len();
    let mut out = vec![0.0f32; out_len];
    for (o, out_v) in out.iter_mut().enumerate() {
        let ws = &weights[o * n..(o + 1) * n];
        let mut acc = bias[o];
        acc += x.iter().zip(ws).map(|(a, b)| a * b).sum::<f32>();
        *out_v = if relu { acc.max(0.0) } else { acc };
    }
    Tensor::vector(out)
}

/// Naive direct convolution, quantized path (`i8` operands, `i32`
/// accumulators).
pub fn conv2d_q(input: &QTensor, p: &ConvParams, wcodes: &[i8], bias_q: &[i32]) -> Vec<i32> {
    let (ih, iw, ic) = (input.h(), input.w(), input.c());
    let (oh, ow) = p.out_hw(ih, iw);
    let mut acc = vec![0i32; oh * ow * p.out_ch];
    let k2ic = p.k * p.k * ic;
    for oy in 0..oh {
        for ox in 0..ow {
            let base_y = (oy * p.stride) as isize - p.pad as isize;
            let base_x = (ox * p.stride) as isize - p.pad as isize;
            let out_off = (oy * ow + ox) * p.out_ch;
            for oc in 0..p.out_ch {
                let wbase = oc * k2ic;
                let mut sum = bias_q[oc];
                for ky in 0..p.k {
                    let y = base_y + ky as isize;
                    if y < 0 || y >= ih as isize {
                        continue;
                    }
                    for kx in 0..p.k {
                        let x = base_x + kx as isize;
                        if x < 0 || x >= iw as isize {
                            continue;
                        }
                        let in_off = ((y as usize) * iw + x as usize) * ic;
                        let w_off = wbase + (ky * p.k + kx) * ic;
                        let xs = &input.codes[in_off..in_off + ic];
                        let ws = &wcodes[w_off..w_off + ic];
                        sum += xs
                            .iter()
                            .zip(ws)
                            .map(|(&a, &b)| i32::from(a) * i32::from(b))
                            .sum::<i32>();
                    }
                }
                acc[out_off + oc] = sum;
            }
        }
    }
    acc
}

/// Naive dense layer, quantized path.
pub fn dense_q(
    input: &QTensor,
    in_len: usize,
    out_len: usize,
    wcodes: &[i8],
    bias_q: &[i32],
) -> Vec<i32> {
    debug_assert_eq!(input.codes.len(), in_len);
    let mut acc = vec![0i32; out_len];
    for (o, a) in acc.iter_mut().enumerate() {
        let ws = &wcodes[o * in_len..(o + 1) * in_len];
        *a = bias_q[o]
            + input
                .codes
                .iter()
                .zip(ws)
                .map(|(&x, &w)| i32::from(x) * i32::from(w))
                .sum::<i32>();
    }
    acc
}

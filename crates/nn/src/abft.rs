//! Algorithm-based fault tolerance (ABFT) for the inference kernels.
//!
//! Below Vmin the DPU keeps answering but silently corrupts results — the
//! paper's central hazard. This module supplies the detection layer of the
//! SDC defense stack:
//!
//! * [`DefenseMode`] / [`DefensePolicy`] — the knob the `--defense` flag
//!   maps onto. `Off` leaves every execution path bit-identical to the
//!   undefended kernels; `Detect` computes checksums and counts
//!   mismatches; `Correct` additionally re-executes a corrupted layer (a
//!   bounded number of times) before giving up.
//! * [`IntChecksum`] — dual row/column-style checksums over the integer
//!   path: a plain wrapping sum plus a position-weighted sum. A single
//!   high-bit accumulator flip perturbs both; a pair of flips that cancels
//!   in the plain sum (one `0→1`, one `1→0` of the same bit — exactly
//!   what a correlated same-bit burst produces) still perturbs the
//!   weighted sum, because the two sites carry different weights.
//! * [`kahan_sum`] and [`FloatAbft`] — checksum-channel ABFT for the f32
//!   path: for `C = W ∗ x` the column-sum identity
//!   `Σ_oc C[·, oc] = (Σ_oc W[oc]) ∗ x + Σ_oc b[oc]` is verified per
//!   output position with a Kahan-compensated channel sum and a
//!   rounding-aware tolerance. The checksum channel costs one extra
//!   output channel — `1/out_ch` of the layer, not a re-execution.
//!
//! The integer checksums are *temporal* (before/after the fault-injection
//! points inside one execution); weight-read corruption is detected by the
//! precomputed-checksum-column model: any surviving weight flip is
//! reported by construction, since a real ABFT weight checksum row is
//! computed offline from clean weights. Checksum aliasing (a fault
//! pattern that preserves both sums) is possible in principle, as in real
//! ABFT, but requires simultaneous cancellation in two differently
//! weighted sums.

use crate::graph::{ConvParams, Graph, Op};
use crate::kernels;
use crate::tensor::Tensor;

/// How aggressively the inference path defends against silent data
/// corruption. Maps 1:1 onto the `--defense` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefenseMode {
    /// No checksums at all; the execution path is bit-identical to the
    /// undefended kernels.
    #[default]
    Off,
    /// Compute and verify checksums, count mismatches, but deliver the
    /// (possibly corrupt) result unchanged — monitoring mode.
    Detect,
    /// Detect and re-execute corrupted layers (bounded retries); ECC
    /// drops correctable weight/activation upsets upstream.
    Correct,
}

impl DefenseMode {
    /// Parses the CLI spelling (`off` / `detect` / `correct`).
    pub fn parse(s: &str) -> Option<DefenseMode> {
        match s {
            "off" => Some(DefenseMode::Off),
            "detect" => Some(DefenseMode::Detect),
            "correct" => Some(DefenseMode::Correct),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            DefenseMode::Off => "off",
            DefenseMode::Detect => "detect",
            DefenseMode::Correct => "correct",
        }
    }

    /// Whether any checksum work happens at all.
    pub fn is_on(self) -> bool {
        self != DefenseMode::Off
    }
}

/// The defense configuration carried by an executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefensePolicy {
    /// Defense mode.
    pub mode: DefenseMode,
    /// Re-executions allowed per checksum stage per layer under
    /// [`DefenseMode::Correct`] before the mismatch is declared
    /// unresolved.
    pub max_reexecutions: u32,
}

/// Default re-execution budget: two retries covers the overwhelming
/// majority of transient upsets without letting a persistently faulting
/// operating point spin.
pub const DEFAULT_MAX_REEXECUTIONS: u32 = 2;

impl Default for DefensePolicy {
    fn default() -> Self {
        DefensePolicy::off()
    }
}

impl DefensePolicy {
    /// No defense (the undefended fast path).
    pub fn off() -> Self {
        DefensePolicy {
            mode: DefenseMode::Off,
            max_reexecutions: 0,
        }
    }

    /// Detection-only monitoring.
    pub fn detect() -> Self {
        DefensePolicy {
            mode: DefenseMode::Detect,
            max_reexecutions: 0,
        }
    }

    /// Detect + re-execute with the default retry budget.
    pub fn correct() -> Self {
        DefensePolicy {
            mode: DefenseMode::Correct,
            max_reexecutions: DEFAULT_MAX_REEXECUTIONS,
        }
    }

    /// Builds the policy for a mode with the default budgets.
    pub fn for_mode(mode: DefenseMode) -> Self {
        match mode {
            DefenseMode::Off => DefensePolicy::off(),
            DefenseMode::Detect => DefensePolicy::detect(),
            DefenseMode::Correct => DefensePolicy::correct(),
        }
    }

    /// Whether checksum work happens.
    pub fn is_on(&self) -> bool {
        self.mode.is_on()
    }

    /// Re-executions permitted per checksum stage.
    pub fn reexec_budget(&self) -> u32 {
        if self.mode == DefenseMode::Correct {
            self.max_reexecutions
        } else {
            0
        }
    }
}

/// ABFT event counters, accumulated across inferences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefenseStats {
    /// Checksum verifications performed.
    pub checks: u64,
    /// Verifications that flagged a corrupted tile.
    pub mismatches: u64,
    /// Layer re-executions triggered by mismatches.
    pub reexecutions: u64,
    /// Mismatches still present after the re-execution budget — the
    /// corruption the governor must escalate on.
    pub unresolved: u64,
}

impl DefenseStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &DefenseStats) {
        self.checks += other.checks;
        self.mismatches += other.mismatches;
        self.reexecutions += other.reexecutions;
        self.unresolved += other.unresolved;
    }

    /// True when every detected mismatch was resolved.
    pub fn clean(&self) -> bool {
        self.unresolved == 0
    }
}

/// Dual checksum over an integer buffer: plain sum and position-weighted
/// sum, both wrapping. See the module docs for why one sum is not enough
/// under correlated same-bit bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntChecksum {
    /// Wrapping sum of elements.
    pub sum: i64,
    /// Wrapping sum of `(index + 1) * element`.
    pub weighted: i64,
}

impl IntChecksum {
    /// Checksums raw 32-bit accumulators.
    pub fn of_acc(acc: &[i32]) -> IntChecksum {
        let mut sum = 0i64;
        let mut weighted = 0i64;
        for (i, &v) in acc.iter().enumerate() {
            let v = i64::from(v);
            sum = sum.wrapping_add(v);
            weighted = weighted.wrapping_add(v.wrapping_mul(i as i64 + 1));
        }
        IntChecksum { sum, weighted }
    }

    /// Checksums quantized activation codes.
    pub fn of_codes(codes: &[i8]) -> IntChecksum {
        let mut sum = 0i64;
        let mut weighted = 0i64;
        for (i, &v) in codes.iter().enumerate() {
            let v = i64::from(v);
            sum = sum.wrapping_add(v);
            weighted = weighted.wrapping_add(v.wrapping_mul(i as i64 + 1));
        }
        IntChecksum { sum, weighted }
    }
}

/// Kahan-compensated sum — keeps the float checksum's own rounding error
/// at O(ε) instead of O(nε) so the verification tolerance can stay tight.
pub fn kahan_sum(xs: impl IntoIterator<Item = f32>) -> f32 {
    let mut s = 0.0f32;
    let mut c = 0.0f32;
    for x in xs {
        let y = x - c;
        let t = s + y;
        c = (t - s) - y;
        s = t;
    }
    s
}

/// Rounding-aware tolerance for comparing a Kahan channel sum against the
/// checksum-channel result: `ε`-scaled by the accumulation length and the
/// observed amplitude. A real fault flips a high accumulator or mantissa
/// bit and lands orders of magnitude outside this band.
pub fn float_tolerance(terms: usize, amplitude: f32) -> f32 {
    64.0 * f32::EPSILON * ((terms.max(1)) as f32).sqrt() * amplitude.max(1.0)
}

/// Per-layer precomputed checksum vectors for the float path.
#[derive(Debug, Clone)]
enum LayerCheck {
    /// Node needs no verification (pools, adds, softmax, …).
    None,
    /// Conv layer: channel-summed kernel and bias.
    Conv {
        params: ConvParams,
        wsum: Vec<f32>,
        bias_sum: f32,
    },
    /// Dense layer: output-summed weight row and bias.
    Dense {
        relu: bool,
        wsum: Vec<f32>,
        bias_sum: f32,
    },
}

/// Verification report for one defended float forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FloatAbftReport {
    /// Conv/dense layers verified.
    pub layers_checked: u64,
    /// Output positions whose channel sum was verified.
    pub positions_checked: u64,
    /// Positions skipped because a fused ReLU clamped a channel there
    /// (the linear checksum identity does not hold through the clamp).
    pub positions_skipped: u64,
    /// Positions whose channel sum disagreed with the checksum channel
    /// beyond tolerance.
    pub mismatches: u64,
}

impl FloatAbftReport {
    /// True when no corrupted tile was flagged.
    pub fn clean(&self) -> bool {
        self.mismatches == 0
    }
}

/// Checksum-channel ABFT for the float executor.
///
/// [`FloatAbft::prepare`] folds every conv/dense layer's weights into a
/// single checksum channel offline; [`FloatAbft::verify`] then checks a
/// finished forward pass (`Graph::forward_all_into` outputs) against the
/// column-sum identity at each output position, skipping positions where
/// a fused ReLU clamped a channel (linearity broken there).
#[derive(Debug, Clone)]
pub struct FloatAbft {
    layers: Vec<LayerCheck>,
    /// Scratch for the checksum-channel convolution.
    expected: Vec<f32>,
}

impl FloatAbft {
    /// Precomputes the checksum vectors for every conv/dense layer of
    /// `graph`.
    pub fn prepare(graph: &Graph) -> FloatAbft {
        let layers = graph
            .nodes()
            .iter()
            .map(|node| match &node.op {
                Op::Conv {
                    params,
                    weights,
                    bias,
                } => {
                    let k2ic = params.k * params.k * params.in_ch;
                    let mut wsum = vec![0.0f32; k2ic];
                    for oc in 0..params.out_ch {
                        for (s, &w) in wsum.iter_mut().zip(&weights[oc * k2ic..(oc + 1) * k2ic]) {
                            *s += w;
                        }
                    }
                    LayerCheck::Conv {
                        params: *params,
                        wsum,
                        bias_sum: kahan_sum(bias.iter().copied()),
                    }
                }
                Op::Dense {
                    in_len,
                    out_len,
                    relu,
                    weights,
                    bias,
                } => {
                    let mut wsum = vec![0.0f32; *in_len];
                    for o in 0..*out_len {
                        for (s, &w) in wsum.iter_mut().zip(&weights[o * in_len..(o + 1) * in_len]) {
                            *s += w;
                        }
                    }
                    LayerCheck::Dense {
                        relu: *relu,
                        wsum,
                        bias_sum: kahan_sum(bias.iter().copied()),
                    }
                }
                _ => LayerCheck::None,
            })
            .collect();
        FloatAbft {
            layers,
            expected: Vec::new(),
        }
    }

    /// Verifies a completed forward pass (`outs` as produced by
    /// [`Graph::forward_all_into`]) against the checksum channels.
    ///
    /// # Panics
    ///
    /// Panics if `outs` does not match the graph this ABFT was prepared
    /// for.
    pub fn verify(
        &mut self,
        graph: &Graph,
        outs: &[Tensor],
        ks: &mut kernels::Scratch,
    ) -> FloatAbftReport {
        assert_eq!(outs.len(), self.layers.len(), "outs/graph mismatch");
        let mut report = FloatAbftReport::default();
        for (id, check) in self.layers.iter().enumerate() {
            let node = &graph.nodes()[id];
            match check {
                LayerCheck::None => {}
                LayerCheck::Conv {
                    params,
                    wsum,
                    bias_sum,
                } => {
                    let input = &outs[node.inputs[0]];
                    let (oh, ow) = params.out_hw(input.h(), input.w());
                    let mut p1 = *params;
                    p1.out_ch = 1;
                    p1.relu = false;
                    self.expected.clear();
                    self.expected.resize(oh * ow, 0.0);
                    kernels::conv2d_f32_into(
                        input,
                        &p1,
                        wsum,
                        &[*bias_sum],
                        ks,
                        &mut self.expected,
                    );
                    report.layers_checked += 1;
                    let out = outs[id].data();
                    let c = params.out_ch;
                    let macs = params.k * params.k * params.in_ch;
                    for (pos, &expected) in self.expected.iter().enumerate() {
                        let channels = &out[pos * c..(pos + 1) * c];
                        if params.relu && channels.contains(&0.0) {
                            report.positions_skipped += 1;
                            continue;
                        }
                        verify_position(expected, channels, macs, &mut report);
                    }
                }
                LayerCheck::Dense {
                    relu,
                    wsum,
                    bias_sum,
                } => {
                    let input = outs[node.inputs[0]].data();
                    let out = outs[id].data();
                    report.layers_checked += 1;
                    if *relu && out.contains(&0.0) {
                        report.positions_skipped += 1;
                        continue;
                    }
                    let expected =
                        bias_sum + kahan_sum(input.iter().zip(wsum.iter()).map(|(&a, &b)| a * b));
                    verify_position(expected, out, input.len(), &mut report);
                }
            }
        }
        report
    }
}

/// Compares one output position's Kahan channel sum against the checksum
/// channel within the rounding tolerance.
fn verify_position(expected: f32, channels: &[f32], macs: usize, report: &mut FloatAbftReport) {
    let actual = kahan_sum(channels.iter().copied());
    let amplitude = channels
        .iter()
        .map(|v| v.abs())
        .fold(expected.abs(), f32::max);
    report.positions_checked += 1;
    if (actual - expected).abs() > float_tolerance(macs * channels.len().max(1), amplitude) {
        report.mismatches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn defense_mode_parses_cli_spellings() {
        for mode in [DefenseMode::Off, DefenseMode::Detect, DefenseMode::Correct] {
            assert_eq!(DefenseMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(DefenseMode::parse("banana"), None);
        assert!(!DefenseMode::Off.is_on());
        assert!(DefenseMode::Detect.is_on());
        assert_eq!(DefensePolicy::detect().reexec_budget(), 0);
        assert_eq!(
            DefensePolicy::correct().reexec_budget(),
            DEFAULT_MAX_REEXECUTIONS
        );
    }

    #[test]
    fn int_checksum_catches_single_high_bit_flip() {
        let mut acc: Vec<i32> = (0..64).map(|i| i * 3 - 17).collect();
        let clean = IntChecksum::of_acc(&acc);
        acc[13] ^= 1 << 20;
        assert_ne!(IntChecksum::of_acc(&acc), clean);
    }

    #[test]
    fn weighted_sum_catches_sum_cancelling_burst_pair() {
        // A same-bit burst that flips 0→1 at one site and 1→0 at another
        // leaves the plain sum unchanged; the weighted sum still moves.
        let mut acc = vec![0i32; 32];
        acc[7] = 1 << 20; // 1→0 under XOR
        let clean = IntChecksum::of_acc(&acc);
        acc[6] ^= 1 << 20; // +2^20
        acc[7] ^= 1 << 20; // -2^20
        let faulty = IntChecksum::of_acc(&acc);
        assert_eq!(faulty.sum, clean.sum, "plain sum aliases by construction");
        assert_ne!(faulty.weighted, clean.weighted);
    }

    #[test]
    fn code_checksum_detects_activation_flip() {
        let mut codes: Vec<i8> = (0..100).map(|i| (i % 13 - 6) as i8).collect();
        let clean = IntChecksum::of_codes(&codes);
        codes[42] ^= 0x40;
        assert_ne!(IntChecksum::of_codes(&codes), clean);
    }

    #[test]
    fn kahan_sum_is_exact_on_adversarial_cancellation() {
        // 1.0 followed by many tiny values that a naive f32 sum drops.
        let xs: Vec<f32> = std::iter::once(1.0e8f32)
            .chain(std::iter::repeat_n(1.0f32, 1000))
            .collect();
        let naive: f32 = xs.iter().sum();
        let kahan = kahan_sum(xs.iter().copied());
        assert_eq!(kahan, 1.0e8 + 1000.0);
        assert_ne!(naive, kahan, "test must exercise the compensation");
    }

    fn tiny_graph() -> crate::graph::Graph {
        let mut b = GraphBuilder::new();
        let input = b.input(6, 6, 3);
        let params = ConvParams {
            in_ch: 3,
            out_ch: 4,
            k: 3,
            stride: 1,
            pad: 1,
            relu: true,
        };
        let weights: Vec<f32> = (0..params.weight_count())
            .map(|i| ((i % 17) as f32 - 8.0) * 0.05)
            .collect();
        // Large positive bias keeps every pre-activation above zero so
        // ReLU never clamps and every position is verifiable.
        let conv = b.conv("c1", input, params, weights, vec![5.0; 4]);
        let dn = 6 * 6 * 4;
        let dweights: Vec<f32> = (0..dn * 5)
            .map(|i| ((i % 11) as f32 - 5.0) * 0.01)
            .collect();
        let dense = b.dense("fc", conv, 5, false, dweights, vec![0.1; 5]);
        b.finish(dense)
    }

    #[test]
    fn float_abft_accepts_clean_forward_pass() {
        let g = tiny_graph();
        let img = Tensor::from_vec(6, 6, 3, (0..108).map(|i| (i as f32) * 0.01).collect());
        let mut outs = Vec::new();
        let mut ks = kernels::Scratch::new();
        g.forward_all_into(&img, &mut outs, &mut ks).unwrap();
        let mut abft = FloatAbft::prepare(&g);
        let report = abft.verify(&g, &outs, &mut ks);
        assert!(report.clean(), "clean pass flagged: {report:?}");
        assert_eq!(report.layers_checked, 2);
        assert_eq!(report.positions_checked, 36 + 1);
        assert_eq!(report.positions_skipped, 0);
    }

    #[test]
    fn float_abft_flags_corrupted_output_tile() {
        let g = tiny_graph();
        let img = Tensor::from_vec(6, 6, 3, (0..108).map(|i| (i as f32) * 0.01).collect());
        let mut outs = Vec::new();
        let mut ks = kernels::Scratch::new();
        g.forward_all_into(&img, &mut outs, &mut ks).unwrap();
        // Simulate a high-bit datapath upset in one conv output element.
        let conv_id = 1;
        outs[conv_id].data_mut()[10] += 4096.0;
        let mut abft = FloatAbft::prepare(&g);
        let report = abft.verify(&g, &outs, &mut ks);
        // The corrupt conv tile flags directly, and the dense layer (whose
        // recorded output no longer matches its now-corrupt input) flags
        // too — both are genuine detections.
        assert!(report.mismatches >= 1, "{report:?}");
    }

    #[test]
    fn float_abft_skips_relu_clamped_positions() {
        let mut b = GraphBuilder::new();
        let input = b.input(4, 4, 2);
        let params = ConvParams {
            in_ch: 2,
            out_ch: 2,
            k: 1,
            stride: 1,
            pad: 0,
            relu: true,
        };
        // Strongly negative bias clamps everything to zero.
        let conv = b.conv("c", input, params, vec![0.1; 4], vec![-100.0; 2]);
        let g = b.finish(conv);
        let img = Tensor::from_vec(4, 4, 2, vec![0.5; 32]);
        let mut outs = Vec::new();
        let mut ks = kernels::Scratch::new();
        g.forward_all_into(&img, &mut outs, &mut ks).unwrap();
        let mut abft = FloatAbft::prepare(&g);
        let report = abft.verify(&g, &outs, &mut ks);
        assert_eq!(report.positions_skipped, 16);
        assert_eq!(report.positions_checked, 0);
        assert!(report.clean());
    }
}

//! Classification metrics.

/// Top-1 accuracy of predictions against labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!labels.is_empty(), "empty evaluation");
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / labels.len() as f64
}

/// Top-k accuracy given per-image score vectors.
///
/// # Panics
///
/// Panics if lengths mismatch, `k == 0`, or any score vector is shorter
/// than `k`.
pub fn top_k_accuracy(scores: &[Vec<f32>], labels: &[usize], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(k > 0 && !labels.is_empty(), "bad arguments");
    let mut hits = 0usize;
    for (s, &label) in scores.iter().zip(labels) {
        assert!(s.len() >= k, "score vector shorter than k");
        let mut idx: Vec<usize> = (0..s.len()).collect();
        idx.sort_by(|&a, &b| s[b].partial_cmp(&s[a]).expect("finite scores"));
        if idx[..k].contains(&label) {
            hits += 1;
        }
    }
    hits as f64 / labels.len() as f64
}

/// A confusion matrix over `classes` classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confusion {
    classes: usize,
    counts: Vec<u64>,
}

impl Confusion {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Confusion {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, label: usize, prediction: usize) {
        assert!(
            label < self.classes && prediction < self.classes,
            "class out of range"
        );
        self.counts[label * self.classes + prediction] += 1;
    }

    /// Count of (label, prediction) pairs.
    pub fn count(&self, label: usize, prediction: usize) -> u64 {
        self.counts[label * self.classes + prediction]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_validates_lengths() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let scores = vec![
            vec![0.1, 0.5, 0.4],
            vec![0.7, 0.2, 0.1],
            vec![0.3, 0.3, 0.4],
        ];
        let labels = [2, 1, 0];
        let t1 = top_k_accuracy(&scores, &labels, 1);
        let t2 = top_k_accuracy(&scores, &labels, 2);
        let t3 = top_k_accuracy(&scores, &labels, 3);
        assert!(t1 <= t2 && t2 <= t3);
        assert_eq!(t3, 1.0);
    }

    #[test]
    fn confusion_accuracy_matches() {
        let mut c = Confusion::new(3);
        c.record(0, 0);
        c.record(1, 1);
        c.record(2, 0);
        c.record(2, 2);
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(2, 0), 1);
        assert_eq!(c.accuracy(), 0.75);
    }

    #[test]
    fn empty_confusion_is_zero_accuracy() {
        assert_eq!(Confusion::new(2).accuracy(), 0.0);
    }
}

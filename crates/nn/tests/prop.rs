//! Property-based tests for the CNN inference stack.

use proptest::prelude::*;
use redvolt_nn::graph::{ConvParams, Graph, GraphBuilder};
use redvolt_nn::prune;
use redvolt_nn::quant::QuantizedGraph;
use redvolt_nn::tensor::Tensor;

/// A small random conv→pool→dense→softmax graph plus a matching image.
fn small_net(seed: u64, relu: bool) -> (Graph, Tensor) {
    let mut b = GraphBuilder::new();
    let x = b.input(6, 6, 2);
    let p = ConvParams {
        in_ch: 2,
        out_ch: 3,
        k: 3,
        stride: 1,
        pad: 1,
        relu,
    };
    let w: Vec<f32> = (0..p.weight_count())
        .map(|i| (((i as u64 + seed) % 17) as f32 / 17.0 - 0.5) * 0.8)
        .collect();
    let y = b.conv("c", x, p, w, vec![0.01, -0.02, 0.0]);
    let m = b.max_pool("p", y, 2, 2);
    let wfc: Vec<f32> = (0..3 * 3 * 3 * 4)
        .map(|i| (((i as u64 * 7 + seed) % 23) as f32 / 23.0 - 0.5) * 0.6)
        .collect();
    let d = b.dense("fc", m, 4, false, wfc, vec![0.0; 4]);
    let s = b.softmax("sm", d);
    let g = b.finish(s);
    let img = Tensor::from_vec(
        6,
        6,
        2,
        (0..72)
            .map(|i| ((i as u64 + seed * 3) % 19) as f32 / 19.0 - 0.5)
            .collect(),
    );
    (g, img)
}

proptest! {
    #[test]
    fn softmax_output_is_a_distribution(seed in 0u64..500, relu in any::<bool>()) {
        let (g, img) = small_net(seed, relu);
        let out = g.forward(&img).unwrap();
        let sum: f32 = out.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert!(out.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn int8_tracks_float_within_tolerance(seed in 0u64..200) {
        let (g, img) = small_net(seed, true);
        let float = g.forward(&img).unwrap();
        let mut q = QuantizedGraph::quantize(&g, 8, std::slice::from_ref(&img)).unwrap();
        let quant = q.forward(&img).unwrap();
        for (a, b) in float.data().iter().zip(quant.data()) {
            prop_assert!((a - b).abs() < 0.12, "float {a} vs int8 {b}");
        }
    }

    #[test]
    fn quantization_error_is_monotone_in_bits(seed in 0u64..100) {
        let (g, img) = small_net(seed, true);
        let float = g.forward(&img).unwrap();
        let err_at = |bits: u32| {
            let mut q = QuantizedGraph::quantize(&g, bits, std::slice::from_ref(&img)).unwrap();
            let out = q.forward(&img).unwrap();
            float
                .data()
                .iter()
                .zip(out.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        // Coarse monotonicity: INT3 must be at least as bad as INT8.
        prop_assert!(err_at(3) >= err_at(8) - 1e-6);
    }

    #[test]
    fn unstructured_prune_hits_target_sparsity(
        seed in 0u64..100,
        fraction in 0.0f64..0.9,
    ) {
        let (g, _) = small_net(seed, true);
        let p = prune::unstructured(&g, fraction);
        let s = prune::sparsity(&p);
        prop_assert!((s - fraction).abs() < 0.05, "sparsity {s} target {fraction}");
        prop_assert_eq!(g.mac_count(), p.mac_count());
    }

    #[test]
    fn channel_prune_preserves_classifier_width(
        seed in 0u64..100,
        fraction in 0.0f64..0.7,
    ) {
        let (g, img) = small_net(seed, true);
        let p = prune::channel_prune(&g, fraction).unwrap();
        prop_assert_eq!(p.num_classes(), g.num_classes());
        prop_assert!(p.mac_count() <= g.mac_count());
        let out = p.forward(&img).unwrap();
        prop_assert_eq!(out.len(), 4);
    }

    #[test]
    fn bias_centering_preserves_shapes(seed in 0u64..50) {
        let (mut g, img) = small_net(seed, true);
        let before = g.forward(&img).unwrap().len();
        g.center_dense_biases(std::slice::from_ref(&img)).unwrap();
        prop_assert_eq!(g.forward(&img).unwrap().len(), before);
    }
}

//! Differential tests: optimized kernels vs the naive references.
//!
//! The contract under test (see `redvolt_nn::kernels` module docs):
//!
//! * float kernels are **bit-identical** to `redvolt_nn::reference` —
//!   compared on `f32::to_bits`, not approximate equality, because the
//!   optimized code must replay the reference accumulation order exactly;
//! * integer kernels produce identical `i32` accumulators (associative
//!   arithmetic, so any blocking/reordering must still be exact).
//!
//! Shapes are randomized across strides, padding, channel counts and the
//! ReLU flag, including the 1×1-kernel fast case and kernels larger than
//! the input (where padding keeps the output non-empty and most taps fall
//! out of bounds — the regime that distinguishes skip-based from
//! zero-fill-based handling).

use proptest::prelude::*;
use redvolt_nn::graph::ConvParams;
use redvolt_nn::kernels::{self, Scratch};
use redvolt_nn::reference;
use redvolt_nn::tensor::{QTensor, Tensor};

/// Deterministic pseudo-random f32 in roughly [-0.6, 0.6], with the
/// occasional exact zero and negative zero so sign-of-zero handling in
/// the float kernels is actually exercised.
fn f32_at(seed: u64, i: usize) -> f32 {
    let h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    match h % 23 {
        0 => 0.0,
        1 => -0.0,
        m => (m as f32 / 23.0 - 0.5) * 1.2,
    }
}

fn i8_at(seed: u64, i: usize) -> i8 {
    let h = seed
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(i as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((h % 255) as i32 - 127) as i8
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #[test]
    fn conv_f32_bit_identical_across_shapes(
        seed in 0u64..1000,
        ih in 1usize..8,
        iw in 1usize..8,
        ic in 1usize..6,
        out_ch in 1usize..10,
        k in 1usize..6,
        stride in 1usize..4,
        pad in 0usize..3,
        relu in any::<bool>(),
    ) {
        // Output must be non-empty; k > ih/iw is allowed when padding
        // makes up the difference.
        prop_assume!(ih + 2 * pad >= k && iw + 2 * pad >= k);
        let p = ConvParams { in_ch: ic, out_ch, k, stride, pad, relu };
        let input = Tensor::from_vec(
            ih, iw, ic,
            (0..ih * iw * ic).map(|i| f32_at(seed, i)).collect(),
        );
        let weights: Vec<f32> =
            (0..p.weight_count()).map(|i| f32_at(seed ^ 0x0e1, i)).collect();
        let bias: Vec<f32> = (0..out_ch).map(|i| f32_at(seed ^ 0xb1a5, i)).collect();
        let want = reference::conv2d_f32(&input, &p, &weights, &bias);
        let got = kernels::conv2d_f32(&input, &p, &weights, &bias);
        prop_assert_eq!(bits(&want), bits(&got), "k={} s={} p={}", k, stride, pad);
    }

    #[test]
    fn dense_f32_bit_identical_across_widths(
        seed in 0u64..1000,
        n in 1usize..40,
        out_len in 1usize..12,
        relu in any::<bool>(),
    ) {
        let input = Tensor::vector((0..n).map(|i| f32_at(seed, i)).collect());
        let weights: Vec<f32> = (0..n * out_len).map(|i| f32_at(seed ^ 0xdead, i)).collect();
        let bias: Vec<f32> = (0..out_len).map(|i| f32_at(seed ^ 0xb1a5, i)).collect();
        let want = reference::dense_f32(&input, out_len, relu, &weights, &bias);
        let got = kernels::dense_f32(&input, out_len, relu, &weights, &bias);
        prop_assert_eq!(bits(&want), bits(&got));
    }

    #[test]
    fn conv_q_exact_across_shapes(
        seed in 0u64..1000,
        ih in 1usize..8,
        iw in 1usize..8,
        ic in 1usize..6,
        out_ch in 1usize..10,
        k in 1usize..6,
        stride in 1usize..4,
        pad in 0usize..3,
    ) {
        prop_assume!(ih + 2 * pad >= k && iw + 2 * pad >= k);
        let p = ConvParams { in_ch: ic, out_ch, k, stride, pad, relu: false };
        let mut input = QTensor::zeros(ih, iw, ic, 0.05);
        for (i, code) in input.codes.iter_mut().enumerate() {
            *code = i8_at(seed, i);
        }
        let wcodes: Vec<i8> = (0..p.weight_count()).map(|i| i8_at(seed ^ 0x77, i)).collect();
        let bias_q: Vec<i32> =
            (0..out_ch).map(|i| i32::from(i8_at(seed ^ 0xb, i)) * 100).collect();
        prop_assert_eq!(
            reference::conv2d_q(&input, &p, &wcodes, &bias_q),
            kernels::conv2d_q(&input, &p, &wcodes, &bias_q),
            "k={} s={} p={}", k, stride, pad
        );
    }

    #[test]
    fn dense_q_exact_across_widths(
        seed in 0u64..1000,
        n in 1usize..60,
        out_len in 1usize..12,
    ) {
        let mut input = QTensor::zeros(1, 1, n, 0.05);
        for (i, code) in input.codes.iter_mut().enumerate() {
            *code = i8_at(seed, i);
        }
        let wcodes: Vec<i8> = (0..n * out_len).map(|i| i8_at(seed ^ 0x42, i)).collect();
        let bias_q: Vec<i32> =
            (0..out_len).map(|i| i32::from(i8_at(seed ^ 0x9, i)) * 7).collect();
        prop_assert_eq!(
            reference::dense_q(&input, n, out_len, &wcodes, &bias_q),
            kernels::dense_q(&input, n, out_len, &wcodes, &bias_q)
        );
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_between_shapes(
        seed in 0u64..200,
        big_first in any::<bool>(),
    ) {
        // One Scratch instance threaded through two very different
        // layers, in both orders — buffer reuse must not leak a larger
        // layer's panel contents into a smaller layer's result.
        let mut scratch = Scratch::new();
        let mut shapes = vec![
            (6usize, 6usize, ConvParams { in_ch: 4, out_ch: 8, k: 3, stride: 1, pad: 1, relu: true }),
            (3, 2, ConvParams { in_ch: 1, out_ch: 3, k: 3, stride: 1, pad: 2, relu: false }),
        ];
        if big_first {
            shapes.reverse();
        }
        for (n, (h, w, p)) in shapes.into_iter().enumerate() {
            let input = Tensor::from_vec(
                h, w, p.in_ch,
                (0..h * w * p.in_ch).map(|i| f32_at(seed + n as u64, i)).collect(),
            );
            let weights: Vec<f32> =
                (0..p.weight_count()).map(|i| f32_at(seed ^ 0x3, i)).collect();
            let bias: Vec<f32> = vec![0.1; p.out_ch];
            let (oh, ow) = p.out_hw(h, w);
            let mut out = vec![0.0f32; oh * ow * p.out_ch];
            kernels::conv2d_f32_into(&input, &p, &weights, &bias, &mut scratch, &mut out);
            let want = reference::conv2d_f32(&input, &p, &weights, &bias);
            prop_assert_eq!(bits(&want), out.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

            let mut qin = QTensor::zeros(h, w, p.in_ch, 0.1);
            for (i, code) in qin.codes.iter_mut().enumerate() {
                *code = i8_at(seed + n as u64, i);
            }
            let wq: Vec<i8> = (0..p.weight_count()).map(|i| i8_at(seed ^ 0x5, i)).collect();
            let bq: Vec<i32> = vec![11; p.out_ch];
            let mut acc = vec![0i32; oh * ow * p.out_ch];
            kernels::conv2d_q_into(&qin, &p, &wq, &bq, &mut scratch, &mut acc);
            prop_assert_eq!(reference::conv2d_q(&qin, &p, &wq, &bq), acc);
        }
    }
}

/// The 1×1-kernel case hit by GoogleNet/ResNet bottlenecks, pinned
/// explicitly (stride 2 as well, which skips input pixels entirely).
#[test]
fn one_by_one_kernels_match() {
    for stride in [1usize, 2] {
        let p = ConvParams {
            in_ch: 8,
            out_ch: 16,
            k: 1,
            stride,
            pad: 0,
            relu: true,
        };
        let input = Tensor::from_vec(5, 7, 8, (0..5 * 7 * 8).map(|i| f32_at(3, i)).collect());
        let weights: Vec<f32> = (0..p.weight_count()).map(|i| f32_at(19, i)).collect();
        let bias: Vec<f32> = (0..16).map(|i| f32_at(23, i)).collect();
        let want = reference::conv2d_f32(&input, &p, &weights, &bias);
        let got = kernels::conv2d_f32(&input, &p, &weights, &bias);
        assert_eq!(bits(&want), bits(&got), "stride={stride}");
    }
}

/// Kernel strictly larger than the input in both dimensions: every
/// output pixel sees mostly out-of-bounds taps.
#[test]
fn kernel_larger_than_input_matches() {
    let p = ConvParams {
        in_ch: 2,
        out_ch: 3,
        k: 5,
        stride: 1,
        pad: 2,
        relu: false,
    };
    let input = Tensor::from_vec(2, 3, 2, (0..12).map(|i| f32_at(7, i)).collect());
    let weights: Vec<f32> = (0..p.weight_count()).map(|i| f32_at(11, i)).collect();
    let bias = vec![0.5, -0.5, 0.0];
    let want = reference::conv2d_f32(&input, &p, &weights, &bias);
    let got = kernels::conv2d_f32(&input, &p, &weights, &bias);
    assert_eq!(bits(&want), bits(&got));

    let mut qin = QTensor::zeros(2, 3, 2, 0.05);
    for (i, code) in qin.codes.iter_mut().enumerate() {
        *code = i8_at(13, i);
    }
    let wq: Vec<i8> = (0..p.weight_count()).map(|i| i8_at(17, i)).collect();
    let bq = vec![1, -2, 3];
    assert_eq!(
        reference::conv2d_q(&qin, &p, &wq, &bq),
        kernels::conv2d_q(&qin, &p, &wq, &bq)
    );
}

/root/repo/target/release/examples/guardband_scan-3a139aedc6467e2b.d: examples/guardband_scan.rs

/root/repo/target/release/examples/guardband_scan-3a139aedc6467e2b: examples/guardband_scan.rs

examples/guardband_scan.rs:

/root/repo/target/release/examples/razor_mitigation-9e8c54524a4238d8.d: examples/razor_mitigation.rs

/root/repo/target/release/examples/razor_mitigation-9e8c54524a4238d8: examples/razor_mitigation.rs

examples/razor_mitigation.rs:

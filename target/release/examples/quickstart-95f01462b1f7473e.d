/root/repo/target/release/examples/quickstart-95f01462b1f7473e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-95f01462b1f7473e: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/release/examples/frequency_rescue-e2479034e3844da4.d: examples/frequency_rescue.rs

/root/repo/target/release/examples/frequency_rescue-e2479034e3844da4: examples/frequency_rescue.rs

examples/frequency_rescue.rs:

/root/repo/target/release/examples/adaptive_governor-7759f84b4e2e6c68.d: examples/adaptive_governor.rs

/root/repo/target/release/examples/adaptive_governor-7759f84b4e2e6c68: examples/adaptive_governor.rs

examples/adaptive_governor.rs:

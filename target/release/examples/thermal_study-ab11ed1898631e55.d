/root/repo/target/release/examples/thermal_study-ab11ed1898631e55.d: examples/thermal_study.rs

/root/repo/target/release/examples/thermal_study-ab11ed1898631e55: examples/thermal_study.rs

examples/thermal_study.rs:

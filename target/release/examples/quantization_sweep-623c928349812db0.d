/root/repo/target/release/examples/quantization_sweep-623c928349812db0.d: examples/quantization_sweep.rs

/root/repo/target/release/examples/quantization_sweep-623c928349812db0: examples/quantization_sweep.rs

examples/quantization_sweep.rs:

/root/repo/target/release/deps/paper_claims-79d5714e3b75f617.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-79d5714e3b75f617: tests/paper_claims.rs

tests/paper_claims.rs:

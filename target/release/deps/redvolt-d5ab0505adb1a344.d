/root/repo/target/release/deps/redvolt-d5ab0505adb1a344.d: src/lib.rs

/root/repo/target/release/deps/libredvolt-d5ab0505adb1a344.rlib: src/lib.rs

/root/repo/target/release/deps/libredvolt-d5ab0505adb1a344.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/redvolt_bench-9628092a1591117b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libredvolt_bench-9628092a1591117b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libredvolt_bench-9628092a1591117b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

/root/repo/target/release/deps/redvolt-e47efb0b19d538e7.d: src/lib.rs

/root/repo/target/release/deps/libredvolt-e47efb0b19d538e7.rlib: src/lib.rs

/root/repo/target/release/deps/libredvolt-e47efb0b19d538e7.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/repro-e0d023cf376061fa.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-e0d023cf376061fa: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

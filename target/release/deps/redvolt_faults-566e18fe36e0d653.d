/root/repo/target/release/deps/redvolt_faults-566e18fe36e0d653.d: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/release/deps/libredvolt_faults-566e18fe36e0d653.rlib: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/release/deps/libredvolt_faults-566e18fe36e0d653.rmeta: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

crates/faults/src/lib.rs:
crates/faults/src/bus.rs:
crates/faults/src/injector.rs:
crates/faults/src/model.rs:

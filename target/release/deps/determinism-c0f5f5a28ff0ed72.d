/root/repo/target/release/deps/determinism-c0f5f5a28ff0ed72.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-c0f5f5a28ff0ed72: tests/determinism.rs

tests/determinism.rs:

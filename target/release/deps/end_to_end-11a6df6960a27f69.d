/root/repo/target/release/deps/end_to_end-11a6df6960a27f69.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-11a6df6960a27f69: tests/end_to_end.rs

tests/end_to_end.rs:

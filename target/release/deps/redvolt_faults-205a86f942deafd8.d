/root/repo/target/release/deps/redvolt_faults-205a86f942deafd8.d: crates/faults/src/lib.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/release/deps/libredvolt_faults-205a86f942deafd8.rlib: crates/faults/src/lib.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/release/deps/libredvolt_faults-205a86f942deafd8.rmeta: crates/faults/src/lib.rs crates/faults/src/injector.rs crates/faults/src/model.rs

crates/faults/src/lib.rs:
crates/faults/src/injector.rs:
crates/faults/src/model.rs:

/root/repo/target/release/deps/redvolt_bench-889d882c276b966d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libredvolt_bench-889d882c276b966d.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libredvolt_bench-889d882c276b966d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

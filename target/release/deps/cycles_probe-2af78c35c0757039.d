/root/repo/target/release/deps/cycles_probe-2af78c35c0757039.d: tests/cycles_probe.rs

/root/repo/target/release/deps/cycles_probe-2af78c35c0757039: tests/cycles_probe.rs

tests/cycles_probe.rs:

/root/repo/target/release/deps/repro-1ca4c8fd9956965a.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-1ca4c8fd9956965a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

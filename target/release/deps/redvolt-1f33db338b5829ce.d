/root/repo/target/release/deps/redvolt-1f33db338b5829ce.d: src/lib.rs

/root/repo/target/release/deps/redvolt-1f33db338b5829ce: src/lib.rs

src/lib.rs:

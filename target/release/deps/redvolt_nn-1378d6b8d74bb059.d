/root/repo/target/release/deps/redvolt_nn-1378d6b8d74bb059.d: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libredvolt_nn-1378d6b8d74bb059.rlib: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libredvolt_nn-1378d6b8d74bb059.rmeta: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/dataset.rs:
crates/nn/src/graph.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/prune.rs:
crates/nn/src/quant.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:

/root/repo/target/release/deps/redvolt_dpu-d06cdaaa7982e6b7.d: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/release/deps/libredvolt_dpu-d06cdaaa7982e6b7.rlib: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/release/deps/libredvolt_dpu-d06cdaaa7982e6b7.rmeta: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

crates/dpu/src/lib.rs:
crates/dpu/src/compiler.rs:
crates/dpu/src/engine.rs:
crates/dpu/src/isa.rs:
crates/dpu/src/memory.rs:
crates/dpu/src/runtime.rs:

/root/repo/target/release/deps/calibrate-22723b9d5b113fe5.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-22723b9d5b113fe5: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:

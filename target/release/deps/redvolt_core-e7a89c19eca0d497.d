/root/repo/target/release/deps/redvolt_core-e7a89c19eca0d497.d: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/bramexp.rs crates/core/src/efficiency.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/freqscale.rs crates/core/src/governor.rs crates/core/src/guardband.rs crates/core/src/journal.rs crates/core/src/mitigation.rs crates/core/src/pruneexp.rs crates/core/src/quantexp.rs crates/core/src/report.rs crates/core/src/supervisor.rs crates/core/src/sweep.rs crates/core/src/tempexp.rs

/root/repo/target/release/deps/libredvolt_core-e7a89c19eca0d497.rlib: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/bramexp.rs crates/core/src/efficiency.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/freqscale.rs crates/core/src/governor.rs crates/core/src/guardband.rs crates/core/src/journal.rs crates/core/src/mitigation.rs crates/core/src/pruneexp.rs crates/core/src/quantexp.rs crates/core/src/report.rs crates/core/src/supervisor.rs crates/core/src/sweep.rs crates/core/src/tempexp.rs

/root/repo/target/release/deps/libredvolt_core-e7a89c19eca0d497.rmeta: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/bramexp.rs crates/core/src/efficiency.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/freqscale.rs crates/core/src/governor.rs crates/core/src/guardband.rs crates/core/src/journal.rs crates/core/src/mitigation.rs crates/core/src/pruneexp.rs crates/core/src/quantexp.rs crates/core/src/report.rs crates/core/src/supervisor.rs crates/core/src/sweep.rs crates/core/src/tempexp.rs

crates/core/src/lib.rs:
crates/core/src/bench_suite.rs:
crates/core/src/bramexp.rs:
crates/core/src/efficiency.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/freqscale.rs:
crates/core/src/governor.rs:
crates/core/src/guardband.rs:
crates/core/src/journal.rs:
crates/core/src/mitigation.rs:
crates/core/src/pruneexp.rs:
crates/core/src/quantexp.rs:
crates/core/src/report.rs:
crates/core/src/supervisor.rs:
crates/core/src/sweep.rs:
crates/core/src/tempexp.rs:

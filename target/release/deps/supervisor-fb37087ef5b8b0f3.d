/root/repo/target/release/deps/supervisor-fb37087ef5b8b0f3.d: tests/supervisor.rs

/root/repo/target/release/deps/supervisor-fb37087ef5b8b0f3: tests/supervisor.rs

tests/supervisor.rs:

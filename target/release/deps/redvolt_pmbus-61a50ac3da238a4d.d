/root/repo/target/release/deps/redvolt_pmbus-61a50ac3da238a4d.d: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

/root/repo/target/release/deps/libredvolt_pmbus-61a50ac3da238a4d.rlib: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

/root/repo/target/release/deps/libredvolt_pmbus-61a50ac3da238a4d.rmeta: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

crates/pmbus/src/lib.rs:
crates/pmbus/src/adapter.rs:
crates/pmbus/src/command.rs:
crates/pmbus/src/device.rs:
crates/pmbus/src/linear.rs:
crates/pmbus/src/mux.rs:
crates/pmbus/src/pec.rs:

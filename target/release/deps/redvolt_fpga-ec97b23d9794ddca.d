/root/repo/target/release/deps/redvolt_fpga-ec97b23d9794ddca.d: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

/root/repo/target/release/deps/libredvolt_fpga-ec97b23d9794ddca.rlib: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

/root/repo/target/release/deps/libredvolt_fpga-ec97b23d9794ddca.rmeta: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

crates/fpga/src/lib.rs:
crates/fpga/src/board.rs:
crates/fpga/src/calib.rs:
crates/fpga/src/power.rs:
crates/fpga/src/rails.rs:
crates/fpga/src/resources.rs:
crates/fpga/src/thermal.rs:
crates/fpga/src/timing.rs:
crates/fpga/src/variation.rs:

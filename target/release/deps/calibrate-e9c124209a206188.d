/root/repo/target/release/deps/calibrate-e9c124209a206188.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-e9c124209a206188: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:

/root/repo/target/release/deps/redvolt_num-93c4c1af96191c6a.d: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/release/deps/libredvolt_num-93c4c1af96191c6a.rlib: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/release/deps/libredvolt_num-93c4c1af96191c6a.rmeta: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

crates/num/src/lib.rs:
crates/num/src/fit.rs:
crates/num/src/fixed.rs:
crates/num/src/pchip.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:

/root/repo/target/debug/examples/adaptive_governor-da4270ddda68a529.d: examples/adaptive_governor.rs

/root/repo/target/debug/examples/adaptive_governor-da4270ddda68a529: examples/adaptive_governor.rs

examples/adaptive_governor.rs:

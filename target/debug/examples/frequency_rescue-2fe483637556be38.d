/root/repo/target/debug/examples/frequency_rescue-2fe483637556be38.d: examples/frequency_rescue.rs

/root/repo/target/debug/examples/frequency_rescue-2fe483637556be38: examples/frequency_rescue.rs

examples/frequency_rescue.rs:

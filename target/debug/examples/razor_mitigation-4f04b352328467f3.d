/root/repo/target/debug/examples/razor_mitigation-4f04b352328467f3.d: examples/razor_mitigation.rs

/root/repo/target/debug/examples/razor_mitigation-4f04b352328467f3: examples/razor_mitigation.rs

examples/razor_mitigation.rs:

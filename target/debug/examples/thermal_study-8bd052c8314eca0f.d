/root/repo/target/debug/examples/thermal_study-8bd052c8314eca0f.d: examples/thermal_study.rs

/root/repo/target/debug/examples/thermal_study-8bd052c8314eca0f: examples/thermal_study.rs

examples/thermal_study.rs:

/root/repo/target/debug/examples/razor_mitigation-2a9b51ef7c2b9d08.d: examples/razor_mitigation.rs Cargo.toml

/root/repo/target/debug/examples/librazor_mitigation-2a9b51ef7c2b9d08.rmeta: examples/razor_mitigation.rs Cargo.toml

examples/razor_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

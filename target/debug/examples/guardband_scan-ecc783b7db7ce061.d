/root/repo/target/debug/examples/guardband_scan-ecc783b7db7ce061.d: examples/guardband_scan.rs Cargo.toml

/root/repo/target/debug/examples/libguardband_scan-ecc783b7db7ce061.rmeta: examples/guardband_scan.rs Cargo.toml

examples/guardband_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

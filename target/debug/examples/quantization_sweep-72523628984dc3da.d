/root/repo/target/debug/examples/quantization_sweep-72523628984dc3da.d: examples/quantization_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libquantization_sweep-72523628984dc3da.rmeta: examples/quantization_sweep.rs Cargo.toml

examples/quantization_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

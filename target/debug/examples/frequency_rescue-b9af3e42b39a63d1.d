/root/repo/target/debug/examples/frequency_rescue-b9af3e42b39a63d1.d: examples/frequency_rescue.rs Cargo.toml

/root/repo/target/debug/examples/libfrequency_rescue-b9af3e42b39a63d1.rmeta: examples/frequency_rescue.rs Cargo.toml

examples/frequency_rescue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/quickstart-f5138a5c6f1bfaef.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f5138a5c6f1bfaef: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/thermal_study-4848fdbc463b0845.d: examples/thermal_study.rs Cargo.toml

/root/repo/target/debug/examples/libthermal_study-4848fdbc463b0845.rmeta: examples/thermal_study.rs Cargo.toml

examples/thermal_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

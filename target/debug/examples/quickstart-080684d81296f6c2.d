/root/repo/target/debug/examples/quickstart-080684d81296f6c2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-080684d81296f6c2: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/quantization_sweep-568e07944d96c347.d: examples/quantization_sweep.rs

/root/repo/target/debug/examples/quantization_sweep-568e07944d96c347: examples/quantization_sweep.rs

examples/quantization_sweep.rs:

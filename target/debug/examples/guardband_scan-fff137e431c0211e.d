/root/repo/target/debug/examples/guardband_scan-fff137e431c0211e.d: examples/guardband_scan.rs

/root/repo/target/debug/examples/guardband_scan-fff137e431c0211e: examples/guardband_scan.rs

examples/guardband_scan.rs:

/root/repo/target/debug/examples/guardband_scan-7134f815842308e9.d: examples/guardband_scan.rs

/root/repo/target/debug/examples/guardband_scan-7134f815842308e9: examples/guardband_scan.rs

examples/guardband_scan.rs:

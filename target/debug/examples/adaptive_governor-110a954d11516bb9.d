/root/repo/target/debug/examples/adaptive_governor-110a954d11516bb9.d: examples/adaptive_governor.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_governor-110a954d11516bb9.rmeta: examples/adaptive_governor.rs Cargo.toml

examples/adaptive_governor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

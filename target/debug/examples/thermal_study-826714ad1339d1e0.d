/root/repo/target/debug/examples/thermal_study-826714ad1339d1e0.d: examples/thermal_study.rs

/root/repo/target/debug/examples/thermal_study-826714ad1339d1e0: examples/thermal_study.rs

examples/thermal_study.rs:

/root/repo/target/debug/examples/quantization_sweep-09fc4ad7d2c737f3.d: examples/quantization_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libquantization_sweep-09fc4ad7d2c737f3.rmeta: examples/quantization_sweep.rs Cargo.toml

examples/quantization_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/adaptive_governor-d64a6e62b04b9ad8.d: examples/adaptive_governor.rs

/root/repo/target/debug/examples/adaptive_governor-d64a6e62b04b9ad8: examples/adaptive_governor.rs

examples/adaptive_governor.rs:

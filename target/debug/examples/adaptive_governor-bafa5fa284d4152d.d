/root/repo/target/debug/examples/adaptive_governor-bafa5fa284d4152d.d: examples/adaptive_governor.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_governor-bafa5fa284d4152d.rmeta: examples/adaptive_governor.rs Cargo.toml

examples/adaptive_governor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

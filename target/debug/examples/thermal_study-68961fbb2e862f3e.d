/root/repo/target/debug/examples/thermal_study-68961fbb2e862f3e.d: examples/thermal_study.rs Cargo.toml

/root/repo/target/debug/examples/libthermal_study-68961fbb2e862f3e.rmeta: examples/thermal_study.rs Cargo.toml

examples/thermal_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

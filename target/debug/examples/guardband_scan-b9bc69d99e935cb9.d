/root/repo/target/debug/examples/guardband_scan-b9bc69d99e935cb9.d: examples/guardband_scan.rs Cargo.toml

/root/repo/target/debug/examples/libguardband_scan-b9bc69d99e935cb9.rmeta: examples/guardband_scan.rs Cargo.toml

examples/guardband_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

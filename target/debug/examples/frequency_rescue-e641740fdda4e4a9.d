/root/repo/target/debug/examples/frequency_rescue-e641740fdda4e4a9.d: examples/frequency_rescue.rs

/root/repo/target/debug/examples/frequency_rescue-e641740fdda4e4a9: examples/frequency_rescue.rs

examples/frequency_rescue.rs:

/root/repo/target/debug/examples/quantization_sweep-2ac083d74bcc389d.d: examples/quantization_sweep.rs

/root/repo/target/debug/examples/quantization_sweep-2ac083d74bcc389d: examples/quantization_sweep.rs

examples/quantization_sweep.rs:

/root/repo/target/debug/examples/razor_mitigation-ba0f965451128d4f.d: examples/razor_mitigation.rs

/root/repo/target/debug/examples/razor_mitigation-ba0f965451128d4f: examples/razor_mitigation.rs

examples/razor_mitigation.rs:

/root/repo/target/debug/deps/redvolt_nn-3d173d5141c44bcf.d: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libredvolt_nn-3d173d5141c44bcf.rlib: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libredvolt_nn-3d173d5141c44bcf.rmeta: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/dataset.rs:
crates/nn/src/graph.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/prune.rs:
crates/nn/src/quant.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:

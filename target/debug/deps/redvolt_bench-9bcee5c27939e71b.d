/root/repo/target/debug/deps/redvolt_bench-9bcee5c27939e71b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/redvolt_bench-9bcee5c27939e71b: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

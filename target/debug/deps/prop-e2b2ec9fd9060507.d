/root/repo/target/debug/deps/prop-e2b2ec9fd9060507.d: crates/dpu/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-e2b2ec9fd9060507.rmeta: crates/dpu/tests/prop.rs Cargo.toml

crates/dpu/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

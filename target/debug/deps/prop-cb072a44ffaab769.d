/root/repo/target/debug/deps/prop-cb072a44ffaab769.d: crates/num/tests/prop.rs

/root/repo/target/debug/deps/prop-cb072a44ffaab769: crates/num/tests/prop.rs

crates/num/tests/prop.rs:

/root/repo/target/debug/deps/redvolt_num-8addd14e6e0f956a.d: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/debug/deps/libredvolt_num-8addd14e6e0f956a.rlib: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/debug/deps/libredvolt_num-8addd14e6e0f956a.rmeta: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

crates/num/src/lib.rs:
crates/num/src/fit.rs:
crates/num/src/fixed.rs:
crates/num/src/pchip.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:

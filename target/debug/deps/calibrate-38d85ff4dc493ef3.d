/root/repo/target/debug/deps/calibrate-38d85ff4dc493ef3.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-38d85ff4dc493ef3: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:

/root/repo/target/debug/deps/repro-52a0cd7415f53b62.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-52a0cd7415f53b62: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

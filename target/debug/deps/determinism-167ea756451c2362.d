/root/repo/target/debug/deps/determinism-167ea756451c2362.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-167ea756451c2362: tests/determinism.rs

tests/determinism.rs:

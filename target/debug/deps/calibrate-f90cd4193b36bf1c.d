/root/repo/target/debug/deps/calibrate-f90cd4193b36bf1c.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-f90cd4193b36bf1c: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:

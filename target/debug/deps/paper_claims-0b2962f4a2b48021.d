/root/repo/target/debug/deps/paper_claims-0b2962f4a2b48021.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-0b2962f4a2b48021: tests/paper_claims.rs

tests/paper_claims.rs:

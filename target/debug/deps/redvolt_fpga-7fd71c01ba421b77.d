/root/repo/target/debug/deps/redvolt_fpga-7fd71c01ba421b77.d: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

/root/repo/target/debug/deps/libredvolt_fpga-7fd71c01ba421b77.rlib: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

/root/repo/target/debug/deps/libredvolt_fpga-7fd71c01ba421b77.rmeta: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

crates/fpga/src/lib.rs:
crates/fpga/src/board.rs:
crates/fpga/src/calib.rs:
crates/fpga/src/power.rs:
crates/fpga/src/rails.rs:
crates/fpga/src/resources.rs:
crates/fpga/src/thermal.rs:
crates/fpga/src/timing.rs:
crates/fpga/src/variation.rs:

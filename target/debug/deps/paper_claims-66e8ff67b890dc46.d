/root/repo/target/debug/deps/paper_claims-66e8ff67b890dc46.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-66e8ff67b890dc46: tests/paper_claims.rs

tests/paper_claims.rs:

/root/repo/target/debug/deps/repro-a7385ec19c987ed2.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a7385ec19c987ed2: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/debug/deps/redvolt_dpu-94957a81508bc164.d: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/debug/deps/redvolt_dpu-94957a81508bc164: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

crates/dpu/src/lib.rs:
crates/dpu/src/compiler.rs:
crates/dpu/src/engine.rs:
crates/dpu/src/isa.rs:
crates/dpu/src/memory.rs:
crates/dpu/src/runtime.rs:

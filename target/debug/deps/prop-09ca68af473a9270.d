/root/repo/target/debug/deps/prop-09ca68af473a9270.d: crates/pmbus/tests/prop.rs

/root/repo/target/debug/deps/prop-09ca68af473a9270: crates/pmbus/tests/prop.rs

crates/pmbus/tests/prop.rs:

/root/repo/target/debug/deps/repro-90e0892be929b10b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-90e0892be929b10b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

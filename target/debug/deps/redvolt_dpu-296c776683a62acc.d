/root/repo/target/debug/deps/redvolt_dpu-296c776683a62acc.d: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_dpu-296c776683a62acc.rmeta: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs Cargo.toml

crates/dpu/src/lib.rs:
crates/dpu/src/compiler.rs:
crates/dpu/src/engine.rs:
crates/dpu/src/isa.rs:
crates/dpu/src/memory.rs:
crates/dpu/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/redvolt_fpga-0c75dff7c6462528.d: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

/root/repo/target/debug/deps/redvolt_fpga-0c75dff7c6462528: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs

crates/fpga/src/lib.rs:
crates/fpga/src/board.rs:
crates/fpga/src/calib.rs:
crates/fpga/src/power.rs:
crates/fpga/src/rails.rs:
crates/fpga/src/resources.rs:
crates/fpga/src/thermal.rs:
crates/fpga/src/timing.rs:
crates/fpga/src/variation.rs:

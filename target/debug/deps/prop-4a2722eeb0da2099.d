/root/repo/target/debug/deps/prop-4a2722eeb0da2099.d: crates/nn/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-4a2722eeb0da2099.rmeta: crates/nn/tests/prop.rs Cargo.toml

crates/nn/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/repro-4e7d8a4b0746ead3.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-4e7d8a4b0746ead3.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

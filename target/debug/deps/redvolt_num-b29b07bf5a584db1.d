/root/repo/target/debug/deps/redvolt_num-b29b07bf5a584db1.d: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_num-b29b07bf5a584db1.rmeta: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs Cargo.toml

crates/num/src/lib.rs:
crates/num/src/fit.rs:
crates/num/src/fixed.rs:
crates/num/src/pchip.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/redvolt_bench-ac5670975436e75f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/redvolt_bench-ac5670975436e75f: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

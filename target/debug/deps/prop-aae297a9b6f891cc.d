/root/repo/target/debug/deps/prop-aae297a9b6f891cc.d: crates/dpu/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-aae297a9b6f891cc.rmeta: crates/dpu/tests/prop.rs Cargo.toml

crates/dpu/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/redvolt-9c33dd258fda39e4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt-9c33dd258fda39e4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

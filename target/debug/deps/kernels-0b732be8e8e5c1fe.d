/root/repo/target/debug/deps/kernels-0b732be8e8e5c1fe.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-0b732be8e8e5c1fe.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

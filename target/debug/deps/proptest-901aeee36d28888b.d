/root/repo/target/debug/deps/proptest-901aeee36d28888b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-901aeee36d28888b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:

/root/repo/target/debug/deps/redvolt_faults-d250f4859c22c745.d: crates/faults/src/lib.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/debug/deps/libredvolt_faults-d250f4859c22c745.rlib: crates/faults/src/lib.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/debug/deps/libredvolt_faults-d250f4859c22c745.rmeta: crates/faults/src/lib.rs crates/faults/src/injector.rs crates/faults/src/model.rs

crates/faults/src/lib.rs:
crates/faults/src/injector.rs:
crates/faults/src/model.rs:

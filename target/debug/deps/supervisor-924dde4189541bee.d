/root/repo/target/debug/deps/supervisor-924dde4189541bee.d: tests/supervisor.rs

/root/repo/target/debug/deps/supervisor-924dde4189541bee: tests/supervisor.rs

tests/supervisor.rs:

/root/repo/target/debug/deps/prop-7ad492a4ddf33a40.d: crates/dpu/tests/prop.rs

/root/repo/target/debug/deps/prop-7ad492a4ddf33a40: crates/dpu/tests/prop.rs

crates/dpu/tests/prop.rs:

/root/repo/target/debug/deps/redvolt-815aa7fabb375291.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt-815aa7fabb375291.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

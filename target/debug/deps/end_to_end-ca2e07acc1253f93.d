/root/repo/target/debug/deps/end_to_end-ca2e07acc1253f93.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ca2e07acc1253f93: tests/end_to_end.rs

tests/end_to_end.rs:

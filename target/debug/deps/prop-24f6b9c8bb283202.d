/root/repo/target/debug/deps/prop-24f6b9c8bb283202.d: crates/dpu/tests/prop.rs

/root/repo/target/debug/deps/prop-24f6b9c8bb283202: crates/dpu/tests/prop.rs

crates/dpu/tests/prop.rs:

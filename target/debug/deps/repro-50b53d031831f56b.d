/root/repo/target/debug/deps/repro-50b53d031831f56b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-50b53d031831f56b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/debug/deps/prop-6d7ed5c3b96ef7bc.d: crates/fpga/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-6d7ed5c3b96ef7bc.rmeta: crates/fpga/tests/prop.rs Cargo.toml

crates/fpga/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/redvolt_faults-f8eba71d66d84e15.d: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/debug/deps/libredvolt_faults-f8eba71d66d84e15.rlib: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/debug/deps/libredvolt_faults-f8eba71d66d84e15.rmeta: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

crates/faults/src/lib.rs:
crates/faults/src/bus.rs:
crates/faults/src/injector.rs:
crates/faults/src/model.rs:

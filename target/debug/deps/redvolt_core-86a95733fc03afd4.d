/root/repo/target/debug/deps/redvolt_core-86a95733fc03afd4.d: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/bramexp.rs crates/core/src/efficiency.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/freqscale.rs crates/core/src/governor.rs crates/core/src/guardband.rs crates/core/src/journal.rs crates/core/src/mitigation.rs crates/core/src/pruneexp.rs crates/core/src/quantexp.rs crates/core/src/report.rs crates/core/src/supervisor.rs crates/core/src/sweep.rs crates/core/src/tempexp.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_core-86a95733fc03afd4.rmeta: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/bramexp.rs crates/core/src/efficiency.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/freqscale.rs crates/core/src/governor.rs crates/core/src/guardband.rs crates/core/src/journal.rs crates/core/src/mitigation.rs crates/core/src/pruneexp.rs crates/core/src/quantexp.rs crates/core/src/report.rs crates/core/src/supervisor.rs crates/core/src/sweep.rs crates/core/src/tempexp.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bench_suite.rs:
crates/core/src/bramexp.rs:
crates/core/src/efficiency.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/freqscale.rs:
crates/core/src/governor.rs:
crates/core/src/guardband.rs:
crates/core/src/journal.rs:
crates/core/src/mitigation.rs:
crates/core/src/pruneexp.rs:
crates/core/src/quantexp.rs:
crates/core/src/report.rs:
crates/core/src/supervisor.rs:
crates/core/src/sweep.rs:
crates/core/src/tempexp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

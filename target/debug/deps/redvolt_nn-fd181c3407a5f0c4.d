/root/repo/target/debug/deps/redvolt_nn-fd181c3407a5f0c4.d: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/redvolt_nn-fd181c3407a5f0c4: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/dataset.rs:
crates/nn/src/graph.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/prune.rs:
crates/nn/src/quant.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:

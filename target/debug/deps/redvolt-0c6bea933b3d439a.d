/root/repo/target/debug/deps/redvolt-0c6bea933b3d439a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt-0c6bea933b3d439a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

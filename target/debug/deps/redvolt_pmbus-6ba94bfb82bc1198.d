/root/repo/target/debug/deps/redvolt_pmbus-6ba94bfb82bc1198.d: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_pmbus-6ba94bfb82bc1198.rmeta: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs Cargo.toml

crates/pmbus/src/lib.rs:
crates/pmbus/src/adapter.rs:
crates/pmbus/src/command.rs:
crates/pmbus/src/device.rs:
crates/pmbus/src/linear.rs:
crates/pmbus/src/mux.rs:
crates/pmbus/src/pec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/redvolt_dpu-d3c093fbbde6931b.d: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/debug/deps/libredvolt_dpu-d3c093fbbde6931b.rlib: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/debug/deps/libredvolt_dpu-d3c093fbbde6931b.rmeta: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

crates/dpu/src/lib.rs:
crates/dpu/src/compiler.rs:
crates/dpu/src/engine.rs:
crates/dpu/src/isa.rs:
crates/dpu/src/memory.rs:
crates/dpu/src/runtime.rs:

/root/repo/target/debug/deps/redvolt_faults-9af6d36c0d59dd51.d: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_faults-9af6d36c0d59dd51.rmeta: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/bus.rs:
crates/faults/src/injector.rs:
crates/faults/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

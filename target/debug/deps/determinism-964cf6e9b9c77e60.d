/root/repo/target/debug/deps/determinism-964cf6e9b9c77e60.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-964cf6e9b9c77e60: tests/determinism.rs

tests/determinism.rs:

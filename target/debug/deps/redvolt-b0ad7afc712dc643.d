/root/repo/target/debug/deps/redvolt-b0ad7afc712dc643.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt-b0ad7afc712dc643.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/redvolt-c9fe7ce5bad02e89.d: src/lib.rs

/root/repo/target/debug/deps/libredvolt-c9fe7ce5bad02e89.rlib: src/lib.rs

/root/repo/target/debug/deps/libredvolt-c9fe7ce5bad02e89.rmeta: src/lib.rs

src/lib.rs:

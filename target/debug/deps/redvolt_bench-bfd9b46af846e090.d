/root/repo/target/debug/deps/redvolt_bench-bfd9b46af846e090.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libredvolt_bench-bfd9b46af846e090.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libredvolt_bench-bfd9b46af846e090.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

/root/repo/target/debug/deps/redvolt-9d0c261cb7611c96.d: src/lib.rs

/root/repo/target/debug/deps/redvolt-9d0c261cb7611c96: src/lib.rs

src/lib.rs:

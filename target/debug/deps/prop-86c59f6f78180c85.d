/root/repo/target/debug/deps/prop-86c59f6f78180c85.d: crates/fpga/tests/prop.rs

/root/repo/target/debug/deps/prop-86c59f6f78180c85: crates/fpga/tests/prop.rs

crates/fpga/tests/prop.rs:

/root/repo/target/debug/deps/redvolt_fpga-bbd886c37d3b58b3.d: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_fpga-bbd886c37d3b58b3.rmeta: crates/fpga/src/lib.rs crates/fpga/src/board.rs crates/fpga/src/calib.rs crates/fpga/src/power.rs crates/fpga/src/rails.rs crates/fpga/src/resources.rs crates/fpga/src/thermal.rs crates/fpga/src/timing.rs crates/fpga/src/variation.rs Cargo.toml

crates/fpga/src/lib.rs:
crates/fpga/src/board.rs:
crates/fpga/src/calib.rs:
crates/fpga/src/power.rs:
crates/fpga/src/rails.rs:
crates/fpga/src/resources.rs:
crates/fpga/src/thermal.rs:
crates/fpga/src/timing.rs:
crates/fpga/src/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

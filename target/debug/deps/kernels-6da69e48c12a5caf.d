/root/repo/target/debug/deps/kernels-6da69e48c12a5caf.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-6da69e48c12a5caf.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/calibrate-392fd5f2677dff3d.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-392fd5f2677dff3d: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:

/root/repo/target/debug/deps/redvolt_bench-dde6c5aa57f61a11.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_bench-dde6c5aa57f61a11.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

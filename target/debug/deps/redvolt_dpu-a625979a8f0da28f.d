/root/repo/target/debug/deps/redvolt_dpu-a625979a8f0da28f.d: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_dpu-a625979a8f0da28f.rmeta: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs Cargo.toml

crates/dpu/src/lib.rs:
crates/dpu/src/compiler.rs:
crates/dpu/src/engine.rs:
crates/dpu/src/isa.rs:
crates/dpu/src/memory.rs:
crates/dpu/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/prop-510dce36afcda8b9.d: crates/nn/tests/prop.rs

/root/repo/target/debug/deps/prop-510dce36afcda8b9: crates/nn/tests/prop.rs

crates/nn/tests/prop.rs:

/root/repo/target/debug/deps/calibrate-cd2d55497aa80861.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-cd2d55497aa80861.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

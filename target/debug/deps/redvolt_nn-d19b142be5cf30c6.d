/root/repo/target/debug/deps/redvolt_nn-d19b142be5cf30c6.d: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_nn-d19b142be5cf30c6.rmeta: crates/nn/src/lib.rs crates/nn/src/dataset.rs crates/nn/src/graph.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/prune.rs crates/nn/src/quant.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/dataset.rs:
crates/nn/src/graph.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/prune.rs:
crates/nn/src/quant.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/end_to_end-ef46bd07e6a2c750.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ef46bd07e6a2c750: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/debug/deps/redvolt_bench-80fcb394ac078797.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libredvolt_bench-80fcb394ac078797.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

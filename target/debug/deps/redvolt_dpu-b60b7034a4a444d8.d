/root/repo/target/debug/deps/redvolt_dpu-b60b7034a4a444d8.d: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/debug/deps/libredvolt_dpu-b60b7034a4a444d8.rlib: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/debug/deps/libredvolt_dpu-b60b7034a4a444d8.rmeta: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

crates/dpu/src/lib.rs:
crates/dpu/src/compiler.rs:
crates/dpu/src/engine.rs:
crates/dpu/src/isa.rs:
crates/dpu/src/memory.rs:
crates/dpu/src/runtime.rs:

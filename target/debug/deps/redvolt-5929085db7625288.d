/root/repo/target/debug/deps/redvolt-5929085db7625288.d: src/lib.rs

/root/repo/target/debug/deps/libredvolt-5929085db7625288.rlib: src/lib.rs

/root/repo/target/debug/deps/libredvolt-5929085db7625288.rmeta: src/lib.rs

src/lib.rs:

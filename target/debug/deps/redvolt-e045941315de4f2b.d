/root/repo/target/debug/deps/redvolt-e045941315de4f2b.d: src/lib.rs

/root/repo/target/debug/deps/redvolt-e045941315de4f2b: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/redvolt_bench-d548e02e843ac94e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libredvolt_bench-d548e02e843ac94e.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libredvolt_bench-d548e02e843ac94e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

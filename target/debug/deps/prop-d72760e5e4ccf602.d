/root/repo/target/debug/deps/prop-d72760e5e4ccf602.d: crates/pmbus/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-d72760e5e4ccf602.rmeta: crates/pmbus/tests/prop.rs Cargo.toml

crates/pmbus/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/redvolt_faults-551c0f040d1f4858.d: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

/root/repo/target/debug/deps/redvolt_faults-551c0f040d1f4858: crates/faults/src/lib.rs crates/faults/src/bus.rs crates/faults/src/injector.rs crates/faults/src/model.rs

crates/faults/src/lib.rs:
crates/faults/src/bus.rs:
crates/faults/src/injector.rs:
crates/faults/src/model.rs:

/root/repo/target/debug/deps/redvolt_num-e7a18904771594bd.d: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/debug/deps/redvolt_num-e7a18904771594bd: crates/num/src/lib.rs crates/num/src/fit.rs crates/num/src/fixed.rs crates/num/src/pchip.rs crates/num/src/rng.rs crates/num/src/stats.rs

crates/num/src/lib.rs:
crates/num/src/fit.rs:
crates/num/src/fixed.rs:
crates/num/src/pchip.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:

/root/repo/target/debug/deps/redvolt_pmbus-fa186f92822d3ba4.d: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

/root/repo/target/debug/deps/libredvolt_pmbus-fa186f92822d3ba4.rlib: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

/root/repo/target/debug/deps/libredvolt_pmbus-fa186f92822d3ba4.rmeta: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

crates/pmbus/src/lib.rs:
crates/pmbus/src/adapter.rs:
crates/pmbus/src/command.rs:
crates/pmbus/src/device.rs:
crates/pmbus/src/linear.rs:
crates/pmbus/src/mux.rs:
crates/pmbus/src/pec.rs:

/root/repo/target/debug/deps/redvolt_dpu-7a5c66d453c1a2d8.d: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

/root/repo/target/debug/deps/redvolt_dpu-7a5c66d453c1a2d8: crates/dpu/src/lib.rs crates/dpu/src/compiler.rs crates/dpu/src/engine.rs crates/dpu/src/isa.rs crates/dpu/src/memory.rs crates/dpu/src/runtime.rs

crates/dpu/src/lib.rs:
crates/dpu/src/compiler.rs:
crates/dpu/src/engine.rs:
crates/dpu/src/isa.rs:
crates/dpu/src/memory.rs:
crates/dpu/src/runtime.rs:

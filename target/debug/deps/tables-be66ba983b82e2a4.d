/root/repo/target/debug/deps/tables-be66ba983b82e2a4.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-be66ba983b82e2a4.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

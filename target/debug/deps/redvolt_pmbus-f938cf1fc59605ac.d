/root/repo/target/debug/deps/redvolt_pmbus-f938cf1fc59605ac.d: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

/root/repo/target/debug/deps/redvolt_pmbus-f938cf1fc59605ac: crates/pmbus/src/lib.rs crates/pmbus/src/adapter.rs crates/pmbus/src/command.rs crates/pmbus/src/device.rs crates/pmbus/src/linear.rs crates/pmbus/src/mux.rs crates/pmbus/src/pec.rs

crates/pmbus/src/lib.rs:
crates/pmbus/src/adapter.rs:
crates/pmbus/src/command.rs:
crates/pmbus/src/device.rs:
crates/pmbus/src/linear.rs:
crates/pmbus/src/mux.rs:
crates/pmbus/src/pec.rs:

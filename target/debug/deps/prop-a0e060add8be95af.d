/root/repo/target/debug/deps/prop-a0e060add8be95af.d: crates/num/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-a0e060add8be95af.rmeta: crates/num/tests/prop.rs Cargo.toml

crates/num/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/supervisor-be4ad3b3a0acf606.d: tests/supervisor.rs Cargo.toml

/root/repo/target/debug/deps/libsupervisor-be4ad3b3a0acf606.rmeta: tests/supervisor.rs Cargo.toml

tests/supervisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/calibrate-c9a211252c85f59c.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-c9a211252c85f59c: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:

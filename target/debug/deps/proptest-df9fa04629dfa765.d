/root/repo/target/debug/deps/proptest-df9fa04629dfa765.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-df9fa04629dfa765.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-df9fa04629dfa765.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:

//! A minimal, dependency-free subset of the [criterion](https://crates.io/crates/criterion)
//! API, vendored so `cargo bench` works without registry access.
//!
//! Supported surface: [`Criterion::benchmark_group`], group tuning knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`), `bench_function`
//! with `Bencher::iter`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Instead of criterion's statistical machinery it reports the
//! mean / min / max wall-clock time over `sample_size` samples as plain
//! text, which is enough to track regressions in BENCH_*.json entries.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
        }
    }

    /// Times a standalone function (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
        };
        group.bench_function(name, f);
        self
    }
}

/// A named set of benchmarks sharing tuning parameters.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up running time before samples are recorded.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        loop {
            f(&mut bencher);
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        bencher.samples.clear();
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {name}: mean {:?} (min {:?}, max {:?}, samples {})",
            mean,
            min,
            max,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to the closure under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine`.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Declares a bench group runner (subset of upstream `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main` (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! A minimal, dependency-free subset of the [proptest](https://crates.io/crates/proptest)
//! API, vendored so the workspace builds and tests without registry access.
//!
//! Supported surface (exactly what this workspace's `tests/prop.rs` files
//! use): the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`any`], numeric range strategies, tuple strategies, `prop_map` /
//! `prop_flat_map`, and [`collection::vec`]. Generation is deterministic:
//! each test case derives its values from a splitmix64 stream seeded by
//! the test's module path, name and case index, so failures reproduce
//! exactly. There is **no shrinking** — the failing inputs are printed by
//! the assertion message instead.
//!
//! The number of cases per property defaults to 64 and can be overridden
//! with the `PROPTEST_CASES` environment variable, mirroring upstream.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing every strategy (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream for one named test case.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, then mix in the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty strategy range");
        // Multiply-shift; bias is irrelevant for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A value generator. The subset here is eager (no shrinking trees).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and feeds it to a strategy-producing
    /// closure (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for `T` (the upstream `any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, Strategy, TestRng,
    };
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Declares deterministic property tests (subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::cases();
                for __case in 0..cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts within a property test (plain `assert!` here: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards a case when its precondition fails. Upstream re-draws the
/// input; this subset simply skips the case, which keeps determinism.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-16i8..=15).generate(&mut rng);
            assert!((-16..=15).contains(&w));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = collection::vec(0.0f64..1.0, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = collection::vec(0u64..5, 4usize).generate(&mut rng);
        assert_eq!(fixed.len(), 4);
    }

    proptest! {
        #[test]
        fn macro_compiles_and_runs(x in 0u32..10, (a, b) in (0.0f64..1.0, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&a));
            let _ = b;
        }
    }
}
